package emit

import (
	"fmt"
	"math/bits"

	"gsim/internal/bitvec"
)

// Bound chains: the final stage of the kernel-compiling pipeline. Where the
// Kernels table pre-resolves opcode dispatch and operand offsets but still
// indexes the state slice on every access, a bound chain is compiled for ONE
// machine: every operand becomes a *uint64 into that machine's state image,
// every closure takes no arguments, and superinstruction fusion and the
// 2-word width classes apply along the way. This is the closest a
// closure-threaded interpreter gets to GSIM's emitted straight-line C++ —
// no dispatch, no operand decode, no bounds checks, no argument traffic.
//
// Safety: a machine's State and Mems backing arrays are allocated once in
// NewMachine and mutated only in place (Reset and Poke copy into them), so
// the pre-resolved pointers stay valid for the machine's lifetime. Engines
// build chains against their own machine at construction time.

// BoundFn is one bound superinstruction: a no-argument closure over
// pre-resolved state pointers.
type BoundFn func()

// CompileNodesBound compiles the given nodes' code ranges, concatenated in
// the order given, into one bound chain. The order is the execution order of
// the chain and must be a dependence order of the nodes — engines pass chunk
// member lists in ascending node/supernode ID, which the partition package
// guarantees is topological, including inside coarsened (level-merged)
// chunks. Fusion applies across node boundaries: adjacent instructions of
// different nodes fuse exactly like intra-node pairs, which is bit-identical
// by the same argument (a fused closure performs both stores in order).
func (p *Program) CompileNodesBound(m *Machine, ids []int32) []BoundFn {
	var chain []Instr
	for _, id := range ids {
		r := p.Code[id]
		chain = append(chain, p.Instrs[r.Start:r.End]...)
	}
	return p.CompileChainBound(m, chain)
}

// CompileChainBound compiles an instruction chain into its bound form for
// machine m: superinstruction fusion over adjacent windows (generated
// matchers from the rule table, widest window first — a triple beats the
// pair it contains), width-class specialization, operand pointers resolved
// into m's state image. The chain need not be contiguous in the program.
// FusionStats simulates exactly this greedy walk; keep the two in step.
func (p *Program) CompileChainBound(m *Machine, ins []Instr) []BoundFn {
	fns := make([]BoundFn, 0, len(ins))
	for i := 0; i < len(ins); i++ {
		if i+2 < len(ins) {
			if r := matchFuse3(ins[i], ins[i+1], ins[i+2]); r != FuseRuleNone {
				fns = append(fns, compileFuse3(p, m, ins[i], ins[i+1], ins[i+2], r))
				i += 2
				continue
			}
		}
		if i+1 < len(ins) {
			if r := matchFuse2(ins[i], ins[i+1]); r != FuseRuleNone {
				fns = append(fns, compileFuse2(p, m, ins[i], ins[i+1], r))
				i++
				continue
			}
		}
		fns = append(fns, compileKernelBound(m, ins[i]))
	}
	return fns
}

// compileKernelBound dispatches one instruction on width class, bound form.
func compileKernelBound(m *Machine, in Instr) BoundFn {
	if in.DW > 64 || in.AW > 64 || in.BW > 64 {
		if fn := compile2WBound(m, in); fn != nil {
			return fn
		}
		wide := in
		return func() { m.execWide(&wide) }
	}
	return compileNarrowBound(m, in)
}

// compileNarrowBound is the pointer-resolved twin of compileNarrowKernel;
// the two must stay semantically identical (the chain property tests and the
// cross-engine lockstep suites pin them against the interpreter).
func compileNarrowBound(m *Machine, in Instr) BoundFn {
	st := m.State
	pd, pa := &st[in.D], &st[in.A]
	pb := &st[in.B]
	aw, bw := in.AW, in.BW
	dm := mask(in.DW)
	switch in.Op {
	case CCopy:
		return func() { *pd = *pa & dm }
	case CAdd:
		return func() { *pd = (*pa + *pb) & dm }
	case CSub:
		return func() { *pd = (*pa - *pb) & dm }
	case CMul:
		return func() { *pd = (*pa * *pb) & dm }
	case CDiv:
		return func() {
			var r uint64
			if bv := *pb; bv != 0 {
				r = *pa / bv
			}
			*pd = r & dm
		}
	case CRem:
		return func() {
			var r uint64
			if bv := *pb; bv != 0 {
				r = *pa % bv
			}
			*pd = r & dm
		}
	case CNeg:
		return func() { *pd = -*pa & dm }
	case CAnd:
		return func() { *pd = (*pa & *pb) & dm }
	case COr:
		return func() { *pd = (*pa | *pb) & dm }
	case CXor:
		return func() { *pd = (*pa ^ *pb) & dm }
	case CNot:
		return func() { *pd = ^*pa & dm }
	case CAndR:
		am := mask(aw)
		return func() { *pd = b2u(*pa == am) }
	case COrR:
		return func() { *pd = b2u(*pa != 0) }
	case CXorR:
		return func() { *pd = uint64(bits.OnesCount64(*pa)) & 1 }
	case CEq:
		return func() { *pd = b2u(*pa == *pb) }
	case CNeq:
		return func() { *pd = b2u(*pa != *pb) }
	case CLt:
		return func() { *pd = b2u(*pa < *pb) }
	case CLeq:
		return func() { *pd = b2u(*pa <= *pb) }
	case CGt:
		return func() { *pd = b2u(*pa > *pb) }
	case CGeq:
		return func() { *pd = b2u(*pa >= *pb) }
	case CSLt:
		return func() { *pd = b2u(sext64(*pa, aw) < sext64(*pb, bw)) }
	case CSLeq:
		return func() { *pd = b2u(sext64(*pa, aw) <= sext64(*pb, bw)) }
	case CSGt:
		return func() { *pd = b2u(sext64(*pa, aw) > sext64(*pb, bw)) }
	case CSGeq:
		return func() { *pd = b2u(sext64(*pa, aw) >= sext64(*pb, bw)) }
	case CShl:
		sh := uint(in.Lo)
		return func() { *pd = (*pa << sh) & dm }
	case CShr:
		sh := uint(in.Lo)
		return func() { *pd = (*pa >> sh) & dm }
	case CDshl:
		return func() {
			var r uint64
			if n := *pb; n < 64 {
				r = *pa << n
			}
			*pd = r & dm
		}
	case CDshr:
		return func() {
			var r uint64
			if n := *pb; n < 64 {
				r = *pa >> n
			}
			*pd = r & dm
		}
	case CCat:
		sh := uint(bw)
		return func() { *pd = (*pa<<sh | *pb) & dm }
	case CBits:
		sh := uint(in.Lo)
		return func() { *pd = (*pa >> sh) & dm }
	case CSExt:
		return func() { *pd = uint64(sext64(*pa, aw)) & dm }
	case CMux:
		pc := &st[in.C]
		return func() {
			r := *pc
			if *pa != 0 {
				r = *pb
			}
			*pd = r & dm
		}
	case CMemRead:
		mi := int(in.Lo)
		spec := &m.Prog.Mems[mi]
		mem := m.Mems[mi]
		depth := uint64(spec.Depth)
		wp := spec.WordsPer
		return func() {
			var r uint64
			if addr := *pa; addr < depth {
				r = mem[int32(addr)*wp]
			}
			*pd = r & dm
		}
	}
	// compileKernel panics for unknown opcodes; mirror it so the coverage
	// sweep catches a new opcode in either compiler.
	panic(fmt.Sprintf("emit: no bound kernel for opcode %d", in.Op))
}

// bsrc2 pre-resolves a two-word operand read: low pointer, high pointer and
// the zero-extension mask (the high pointer aliases the low word with a zero
// mask for one-word operands, keeping the read branchless).
func bsrc2(st []uint64, off, w int32) (lo, hi *uint64, hiMask uint64) {
	lo = &st[off]
	hi = lo
	if w > 64 {
		hi = &st[off+1]
		hiMask = ^uint64(0)
	}
	return
}

// compile2WBound builds the two-word width-class closure (see the WidthClass
// doc in wide2.go), or returns nil when the instruction is not in the 2-word
// class; each closure reproduces execWide's result exactly, including the
// top-word mask — the width-class tests pin this on randomized state.
func compile2WBound(m *Machine, in Instr) BoundFn {
	if !is2Word(in) {
		return nil
	}
	st := m.State
	hm := bitvec.TopMask(int(in.DW))
	a0, a1, am := bsrc2(st, in.A, in.AW)
	b0, b1, bm := bsrc2(st, in.B, in.BW)
	switch in.Op {
	case CCopy, CAdd, CSub, CAnd, COr, CXor, CNot, CMux:
		d0, d1 := &st[in.D], &st[in.D+1]
		switch in.Op {
		case CCopy:
			return func() { *d0 = *a0; *d1 = (*a1 & am) & hm }
		case CAdd:
			return func() {
				s0, c := bits.Add64(*a0, *b0, 0)
				*d0 = s0
				*d1 = ((*a1 & am) + (*b1 & bm) + c) & hm
			}
		case CSub:
			return func() {
				s0, br := bits.Sub64(*a0, *b0, 0)
				*d0 = s0
				*d1 = ((*a1 & am) - (*b1 & bm) - br) & hm
			}
		case CAnd:
			return func() { *d0 = *a0 & *b0; *d1 = (*a1 & am) & (*b1 & bm) & hm }
		case COr:
			return func() { *d0 = *a0 | *b0; *d1 = ((*a1 & am) | (*b1 & bm)) & hm }
		case CXor:
			return func() { *d0 = *a0 ^ *b0; *d1 = ((*a1 & am) ^ (*b1 & bm)) & hm }
		case CNot:
			return func() { *d0 = ^*a0; *d1 = ^(*a1 & am) & hm }
		default: // CMux
			psel := &st[in.A]
			c0, c1, cm := bsrc2(st, in.C, in.BW)
			return func() {
				lo, hi := *c0, *c1&cm
				if *psel != 0 {
					lo, hi = *b0, *b1&bm
				}
				*d0 = lo
				*d1 = hi & hm
			}
		}
	case CEq:
		pd := &st[in.D]
		return func() {
			diff := (*a0 ^ *b0) | ((*a1 & am) ^ (*b1 & bm))
			*pd = b2u(diff == 0)
		}
	case CNeq:
		pd := &st[in.D]
		return func() {
			diff := (*a0 ^ *b0) | ((*a1 & am) ^ (*b1 & bm))
			*pd = b2u(diff != 0)
		}
	}
	return nil
}

// narrowValueBound compiles a pure narrow instruction into a no-argument
// value closure over pre-resolved pointers — the producer half of the bound
// generic fusion families.
func narrowValueBound(m *Machine, in Instr) func() uint64 {
	if !pureNarrow(in) {
		return nil
	}
	st := m.State
	pa, pb := &st[in.A], &st[in.B]
	aw := in.AW
	dm := mask(in.DW)
	if isCmp(in.Op) {
		x, y, xw, yw, negBit, kind := cmpParts(in)
		px, py := &st[x], &st[y]
		switch kind {
		case cmpEqK:
			return func() uint64 { return b2u(*px == *py) ^ negBit }
		case cmpLtS:
			return func() uint64 { return b2u(sext64(*px, xw) < sext64(*py, yw)) ^ negBit }
		}
		return func() uint64 { return b2u(*px < *py) ^ negBit }
	}
	switch in.Op {
	case CCopy:
		return func() uint64 { return *pa & dm }
	case CAdd:
		return func() uint64 { return (*pa + *pb) & dm }
	case CSub:
		return func() uint64 { return (*pa - *pb) & dm }
	case CMul:
		return func() uint64 { return (*pa * *pb) & dm }
	case CDiv:
		return func() uint64 {
			if bv := *pb; bv != 0 {
				return (*pa / bv) & dm
			}
			return 0
		}
	case CRem:
		return func() uint64 {
			if bv := *pb; bv != 0 {
				return (*pa % bv) & dm
			}
			return 0
		}
	case CNeg:
		return func() uint64 { return -*pa & dm }
	case CAnd:
		return func() uint64 { return (*pa & *pb) & dm }
	case COr:
		return func() uint64 { return (*pa | *pb) & dm }
	case CXor:
		return func() uint64 { return (*pa ^ *pb) & dm }
	case CNot:
		return func() uint64 { return ^*pa & dm }
	case CAndR:
		am := mask(aw)
		return func() uint64 { return b2u(*pa == am) }
	case COrR:
		return func() uint64 { return b2u(*pa != 0) }
	case CXorR:
		return func() uint64 { return uint64(bits.OnesCount64(*pa)) & 1 }
	case CShl:
		sh := uint(in.Lo)
		return func() uint64 { return (*pa << sh) & dm }
	case CShr, CBits:
		sh := uint(in.Lo)
		return func() uint64 { return (*pa >> sh) & dm }
	case CDshl:
		return func() uint64 {
			if n := *pb; n < 64 {
				return (*pa << n) & dm
			}
			return 0
		}
	case CDshr:
		return func() uint64 {
			if n := *pb; n < 64 {
				return (*pa >> n) & dm
			}
			return 0
		}
	case CCat:
		sh := uint(in.BW)
		return func() uint64 { return (*pa<<sh | *pb) & dm }
	case CSExt:
		return func() uint64 { return uint64(sext64(*pa, aw)) & dm }
	case CMux:
		pc := &st[in.C]
		return func() uint64 {
			r := *pc
			if *pa != 0 {
				r = *pb
			}
			return r & dm
		}
	}
	return nil
}

// Fused-window constructors. compileFuse2/compileFuse3 (generated from the
// rule table in internal/emit/rules) dispatch each matched window to one of
// these; every constructor builds a single bound closure that stores every
// source instruction's result in original order, so state-slot aliasing
// between the window's instructions can never change the outcome relative
// to running them back to back. The specialized constructors inline every
// computation; the generic fuseAlu* constructors compute the producer
// through its pre-bound value closure (one thin call) and inline the
// consumer tail.

// maskShiftOf returns the right-shift a mask consumer (copy or bits)
// applies: bits slices from its Lo, copy truncates in place.
func maskShiftOf(b Instr) uint {
	if b.Op == CBits {
		return uint(b.Lo)
	}
	return 0
}

// fuseCopyMux: a copy feeding any operand of a mux.
func fuseCopyMux(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pad, paa := &st[a.D], &st[a.A]
	adm := mask(a.DW)
	psel, pbb, pbc, pbd := &st[b.A], &st[b.B], &st[b.C], &st[b.D]
	bdm := mask(b.DW)
	return func() {
		*pad = *paa & adm
		r := *pbc
		if *psel != 0 {
			r = *pbb
		}
		*pbd = r & bdm
	}
}

// fuseCmpMux: a comparison result selecting a mux.
func fuseCmpMux(_ *Program, m *Machine, a, b Instr) BoundFn {
	return compileCmpMuxBound(m.State, a, b)
}

// fuseAddMask: an add immediately truncated or sliced.
func fuseAddMask(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pad, paa, pab := &st[a.D], &st[a.A], &st[a.B]
	adm := mask(a.DW)
	pbd := &st[b.D]
	bdm := mask(b.DW)
	sh := maskShiftOf(b)
	return func() {
		t := (*paa + *pab) & adm
		*pad = t
		*pbd = (t >> sh) & bdm
	}
}

// fuseSubMask: the subtract twin of fuseAddMask.
func fuseSubMask(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pad, paa, pab := &st[a.D], &st[a.A], &st[a.B]
	adm := mask(a.DW)
	pbd := &st[b.D]
	bdm := mask(b.DW)
	sh := maskShiftOf(b)
	return func() {
		t := (*paa - *pab) & adm
		*pad = t
		*pbd = (t >> sh) & bdm
	}
}

// fuseAluMask: any pure producer into a truncation.
func fuseAluMask(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pv := narrowValueBound(m, a)
	pad, pbd := &st[a.D], &st[b.D]
	bdm := mask(b.DW)
	sh := maskShiftOf(b)
	return func() {
		t := pv()
		*pad = t
		*pbd = (t >> sh) & bdm
	}
}

// fuseAluMux: any pure producer into any operand of a mux.
func fuseAluMux(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pv := narrowValueBound(m, a)
	pad := &st[a.D]
	psel, pbb, pbc, pbd := &st[b.A], &st[b.B], &st[b.C], &st[b.D]
	bdm := mask(b.DW)
	return func() {
		*pad = pv()
		r := *pbc
		if *psel != 0 {
			r = *pbb
		}
		*pbd = r & bdm
	}
}

// fuseAluCat: any pure producer into either side of a concatenation.
func fuseAluCat(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pv := narrowValueBound(m, a)
	pad := &st[a.D]
	pba, pbb, pbd := &st[b.A], &st[b.B], &st[b.D]
	bdm := mask(b.DW)
	sh := uint(b.BW)
	return func() {
		*pad = pv()
		*pbd = (*pba<<sh | *pbb) & bdm
	}
}

// fuseAluLogic: any pure producer into a binary and/or/xor.
func fuseAluLogic(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pv := narrowValueBound(m, a)
	pad := &st[a.D]
	pba, pbb, pbd := &st[b.A], &st[b.B], &st[b.D]
	bdm := mask(b.DW)
	switch b.Op {
	case CAnd:
		return func() { *pad = pv(); *pbd = (*pba & *pbb) & bdm }
	case COr:
		return func() { *pad = pv(); *pbd = (*pba | *pbb) & bdm }
	default: // CXor
		return func() { *pad = pv(); *pbd = (*pba ^ *pbb) & bdm }
	}
}

// fuseAluEq: any pure producer into an equality/inequality test.
func fuseAluEq(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pv := narrowValueBound(m, a)
	pad := &st[a.D]
	pba, pbb, pbd := &st[b.A], &st[b.B], &st[b.D]
	negBit := b2u(b.Op == CNeq)
	return func() {
		*pad = pv()
		*pbd = b2u(*pba == *pbb) ^ negBit
	}
}

// fuseAluMemRead: an address computation feeding a memory read port.
func fuseAluMemRead(p *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pv := narrowValueBound(m, a)
	pad, pbd := &st[a.D], &st[b.D]
	bdm := mask(b.DW)
	mi := int(b.Lo)
	spec := &p.Mems[mi]
	mem := m.Mems[mi]
	depth := uint64(spec.Depth)
	wp := spec.WordsPer
	return func() {
		t := pv()
		*pad = t
		var r uint64
		if t < depth {
			r = mem[int32(t)*wp]
		}
		*pbd = r & bdm
	}
}

// fuseAndEqz: a bitwise and feeding an equality/inequality test or an
// or-reduction (the and-eqz and and-orr rules both land here; the consumer
// opcode picks the tail).
func fuseAndEqz(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pad, paa, pab := &st[a.D], &st[a.A], &st[a.B]
	adm := mask(a.DW)
	pbd := &st[b.D]
	switch b.Op {
	case CEq:
		pother := pbb2(st, a, b)
		return func() {
			t := (*paa & *pab) & adm
			*pad = t
			*pbd = b2u(t == *pother)
		}
	case CNeq:
		pother := pbb2(st, a, b)
		return func() {
			t := (*paa & *pab) & adm
			*pad = t
			*pbd = b2u(t != *pother)
		}
	default: // COrR
		return func() {
			t := (*paa & *pab) & adm
			*pad = t
			*pbd = b2u(t != 0)
		}
	}
}

// fuseMuxMux: a mux feeding an arm of the next mux.
func fuseMuxMux(_ *Program, m *Machine, a, b Instr) BoundFn {
	st := m.State
	pasel, pab, pac, pad := &st[a.A], &st[a.B], &st[a.C], &st[a.D]
	adm := mask(a.DW)
	psel, pbb, pbc, pbd := &st[b.A], &st[b.B], &st[b.C], &st[b.D]
	bdm := mask(b.DW)
	return func() {
		t := *pac
		if *pasel != 0 {
			t = *pab
		}
		*pad = t & adm
		r := *pbc
		if *psel != 0 {
			r = *pbb
		}
		*pbd = r & bdm
	}
}

// fuseMuxMuxMux: three adjacent muxes, each feeding the next — one closure
// per priority-encoder triple, removing two dispatches. Each mux's operand
// pointers are read after the previous store, so any aliasing (an arm or
// even a selector reading an earlier destination) behaves exactly like
// sequential execution.
func fuseMuxMuxMux(_ *Program, m *Machine, a, b, c Instr) BoundFn {
	st := m.State
	pasel, pab, pac, pad := &st[a.A], &st[a.B], &st[a.C], &st[a.D]
	adm := mask(a.DW)
	pbsel, pbb, pbc, pbd := &st[b.A], &st[b.B], &st[b.C], &st[b.D]
	bdm := mask(b.DW)
	pcsel, pcb, pcc, pcd := &st[c.A], &st[c.B], &st[c.C], &st[c.D]
	cdm := mask(c.DW)
	return func() {
		t := *pac
		if *pasel != 0 {
			t = *pab
		}
		*pad = t & adm
		u := *pbc
		if *pbsel != 0 {
			u = *pbb
		}
		*pbd = u & bdm
		r := *pcc
		if *pcsel != 0 {
			r = *pcb
		}
		*pcd = r & cdm
	}
}

// fuseCmpMuxMux: a comparison selecting a mux whose result feeds an arm of
// the next mux — the head of a priority chain. The computed comparison bit
// forwards straight into the first mux's select (the match guarantees the
// slot identity); the second mux reads its operands after both stores.
func fuseCmpMuxMux(_ *Program, m *Machine, a, b, c Instr) BoundFn {
	st := m.State
	pad := &st[a.D]
	pbb, pbc, pbd := &st[b.B], &st[b.C], &st[b.D]
	bdm := mask(b.DW)
	pcsel, pcb, pcc, pcd := &st[c.A], &st[c.B], &st[c.C], &st[c.D]
	cdm := mask(c.DW)
	x, y, xw, yw, negBit, kind := cmpParts(a)
	px, py := &st[x], &st[y]
	switch kind {
	case cmpEqK:
		return func() {
			cond := b2u(*px == *py) ^ negBit
			*pad = cond
			u := *pbc
			if cond != 0 {
				u = *pbb
			}
			*pbd = u & bdm
			r := *pcc
			if *pcsel != 0 {
				r = *pcb
			}
			*pcd = r & cdm
		}
	case cmpLtS:
		return func() {
			cond := b2u(sext64(*px, xw) < sext64(*py, yw)) ^ negBit
			*pad = cond
			u := *pbc
			if cond != 0 {
				u = *pbb
			}
			*pbd = u & bdm
			r := *pcc
			if *pcsel != 0 {
				r = *pcb
			}
			*pcd = r & cdm
		}
	}
	return func() {
		cond := b2u(*px < *py) ^ negBit
		*pad = cond
		u := *pbc
		if cond != 0 {
			u = *pbb
		}
		*pbd = u & bdm
		r := *pcc
		if *pcsel != 0 {
			r = *pcb
		}
		*pcd = r & cdm
	}
}

// pbb2 resolves the non-forwarded operand of an and-eqz consumer.
func pbb2(st []uint64, a, b Instr) *uint64 {
	if b.B == a.D {
		return &st[b.A]
	}
	return &st[b.B]
}

// compileCmpMuxBound specializes compare-into-mux into one straight-line
// closure per comparison kernel (see cmpParts).
func compileCmpMuxBound(st []uint64, a, b Instr) BoundFn {
	pad := &st[a.D]
	pbb, pbc, pbd := &st[b.B], &st[b.C], &st[b.D]
	bdm := mask(b.DW)
	x, y, xw, yw, negBit, kind := cmpParts(a)
	px, py := &st[x], &st[y]
	switch kind {
	case cmpEqK:
		return func() {
			c := b2u(*px == *py) ^ negBit
			*pad = c
			r := *pbc
			if c != 0 {
				r = *pbb
			}
			*pbd = r & bdm
		}
	case cmpLtS:
		return func() {
			c := b2u(sext64(*px, xw) < sext64(*py, yw)) ^ negBit
			*pad = c
			r := *pbc
			if c != 0 {
				r = *pbb
			}
			*pbd = r & bdm
		}
	}
	return func() {
		c := b2u(*px < *py) ^ negBit
		*pad = c
		r := *pbc
		if c != 0 {
			r = *pbb
		}
		*pbd = r & bdm
	}
}
