// Gang execution: K independent stimulus lanes through one compiled Program.
//
// A GangMachine holds K machine images in struct-of-arrays layout — state word
// w of lane l lives at State[w*K+l], memory word j of lane l at Mems[m][j*K+l]
// — so one instruction dispatch sweeps a contiguous run of K lane values. This
// amortizes the per-instruction overhead (closure call, operand decode) that a
// scalar Machine pays once per lane, the CPU analogue of GPU batch simulation:
// most real traffic against a hot design is the same compiled program under
// different inputs.
//
// Gang kernels come in two shapes per instruction:
//   - the dense path, taken when every lane is selected, runs a tight
//     bounds-check-eliminated loop over the K-wide lane slices;
//   - the masked path, taken when lanes have diverged (parked lanes, per-lane
//     restore), gathers one lane into a scalar scratch Machine, runs the
//     reference execNarrow/execWide, and scatters the result back — bit-exact
//     by construction, paid only by the lanes actually selected.
//
// 1-bit control signals additionally pack bit-parallel across lanes: PackBits
// collapses a 1-bit signal's K lane words into one uint64 lane mask, so
// engines decide per-lane control (write enables, reset signals) with single
// word ops against the liveness mask instead of K branches.
package emit

import (
	"fmt"
	"math/bits"

	"gsim/internal/bitvec"
)

// MaxGangLanes bounds a gang's lane count: lane masks are one uint64.
const MaxGangLanes = 64

// GangFullMask returns the all-lanes-selected mask for k lanes.
func GangFullMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// GangFn executes one compiled instruction across the lanes selected by mask
// (bit l selects lane l). Kernels are compiled per (Program, lane count) and
// shared by every GangMachine of that shape, so they close over offsets only
// and receive the machine explicitly.
type GangFn func(gm *GangMachine, mask uint64)

// GangMachine is K executable instances of a Program in lane-strided
// struct-of-arrays layout. Lanes share nothing but the read-only Program.
type GangMachine struct {
	Prog *Program
	K    int
	// State holds NumWords*K words: state word w of lane l at w*K+l.
	State []uint64
	// Mems holds each memory lane-strided: memory word j of lane l at j*K+l.
	Mems [][]uint64
	// Executed counts instructions retired across all lanes (lane-cycles ×
	// instructions); engines add from serial context like Machine.Executed.
	Executed uint64

	// scratch is a scalar image used by the masked/wide fallback: one lane's
	// operands gather in, the reference interpreter runs, the result scatters
	// back. Never holds live state between instructions.
	scratch *Machine
}

// NewGangMachine instantiates k lanes of the program's initial image.
func NewGangMachine(p *Program, k int) *GangMachine {
	if k < 1 || k > MaxGangLanes {
		panic(fmt.Sprintf("emit: gang lane count %d outside [1,%d]", k, MaxGangLanes))
	}
	gm := &GangMachine{
		Prog:    p,
		K:       k,
		State:   make([]uint64, p.NumWords*k),
		Mems:    make([][]uint64, len(p.Mems)),
		scratch: &Machine{Prog: p, State: make([]uint64, p.NumWords)},
	}
	for i := range p.Mems {
		gm.Mems[i] = make([]uint64, len(p.Mems[i].Init)*k)
	}
	gm.Reset()
	return gm
}

// Reset restores every lane to the initial image and clears the counter.
func (gm *GangMachine) Reset() {
	broadcastLanes(gm.State, gm.Prog.Init, gm.K)
	for i := range gm.Mems {
		broadcastLanes(gm.Mems[i], gm.Prog.Mems[i].Init, gm.K)
	}
	gm.Executed = 0
}

// ResetLane restores one lane to the initial image, leaving the others alone.
func (gm *GangMachine) ResetLane(l int) {
	injectLane(gm.State, gm.Prog.Init, gm.K, l)
	for i := range gm.Mems {
		injectLane(gm.Mems[i], gm.Prog.Mems[i].Init, gm.K, l)
	}
}

// broadcastLanes writes src[j] into all k lane slots of word j.
func broadcastLanes(dst, src []uint64, k int) {
	for j, v := range src {
		lane := dst[j*k : (j+1)*k]
		for l := range lane {
			lane[l] = v
		}
	}
}

// injectLane writes a scalar image into one lane's strided slots.
func injectLane(dst, src []uint64, k, l int) {
	for j, v := range src {
		dst[j*k+l] = v
	}
}

// extractLane reads one lane's strided slots into a scalar image.
func extractLane(dst, src []uint64, k, l int) {
	for j := range dst {
		dst[j] = src[j*k+l]
	}
}

// ExtractLane copies lane l's state image into dst (NumWords words).
func (gm *GangMachine) ExtractLane(l int, dst []uint64) { extractLane(dst, gm.State, gm.K, l) }

// InjectLane overwrites lane l's state image from src (NumWords words).
func (gm *GangMachine) InjectLane(l int, src []uint64) { injectLane(gm.State, src, gm.K, l) }

// ExtractLaneMem copies lane l's image of memory mi into dst.
func (gm *GangMachine) ExtractLaneMem(mi, l int, dst []uint64) {
	extractLane(dst, gm.Mems[mi], gm.K, l)
}

// InjectLaneMem overwrites lane l's image of memory mi from src.
func (gm *GangMachine) InjectLaneMem(mi, l int, src []uint64) { injectLane(gm.Mems[mi], src, gm.K, l) }

// LanePeek returns a node's current value in lane l.
func (gm *GangMachine) LanePeek(l, nodeID int) bitvec.BV {
	n := gm.Prog.Graph.Nodes[nodeID]
	off := int(gm.Prog.Off[nodeID])
	w := int(gm.Prog.WordsOf[nodeID])
	words := make([]uint64, w)
	for i := range words {
		words[i] = gm.State[(off+i)*gm.K+l]
	}
	return bitvec.FromWords(n.Width, words)
}

// LanePoke overwrites an input node's value in lane l, truncating to width,
// and reports whether the value changed.
func (gm *GangMachine) LanePoke(l, nodeID int, v bitvec.BV) bool {
	n := gm.Prog.Graph.Nodes[nodeID]
	w := bitvec.Pad(v, n.Width)
	off := int(gm.Prog.Off[nodeID])
	changed := false
	for i, word := range w.W {
		if slot := (off+i)*gm.K + l; gm.State[slot] != word {
			changed = true
			gm.State[slot] = word
		}
	}
	return changed
}

// LanePeekMem returns one element of a memory in lane l.
func (gm *GangMachine) LanePeekMem(l, memID, addr int) bitvec.BV {
	spec := &gm.Prog.Mems[memID]
	base := addr * int(spec.WordsPer)
	words := make([]uint64, spec.WordsPer)
	for i := range words {
		words[i] = gm.Mems[memID][(base+i)*gm.K+l]
	}
	return bitvec.FromWords(spec.Width, words)
}

// LanePokeMem overwrites one element of a memory in lane l.
func (gm *GangMachine) LanePokeMem(l, memID, addr int, v bitvec.BV) {
	spec := &gm.Prog.Mems[memID]
	w := bitvec.Pad(v, spec.Width)
	base := addr * int(spec.WordsPer)
	for i, word := range w.W {
		gm.Mems[memID][(base+i)*gm.K+l] = word
	}
}

// PackBits packs a 1-bit signal's K lane values into a lane mask (lane l ->
// bit l) — the bit-parallel read engines use for per-lane control decisions.
func (gm *GangMachine) PackBits(off int32) uint64 {
	base := int(off) * gm.K
	var m uint64
	for l := 0; l < gm.K; l++ {
		m |= (gm.State[base+l] & 1) << uint(l)
	}
	return m
}

// execLanes runs one instruction on each lane selected by mask through the
// gather/execute/scatter fallback — the divergence path and the wide path.
func (gm *GangMachine) execLanes(in *Instr, mask uint64) {
	for mm := mask; mm != 0; mm &= mm - 1 {
		gm.execLane(in, bits.TrailingZeros64(mm))
	}
}

// execLane executes one instruction for one lane via the scalar scratch
// image: gather the operands, run the reference interpreter, scatter the
// result. Memory reads run natively against the strided arrays instead.
func (gm *GangMachine) execLane(in *Instr, l int) {
	if in.Op == CMemRead {
		gm.memReadLane(in, l)
		return
	}
	gm.gatherLane(in.A, wordsFor32(in.AW), l)
	if in.Op >= CAdd { // binaries read B; unaries ignore it (see execNarrow)
		gm.gatherLane(in.B, wordsFor32(in.BW), l)
	}
	if in.Op == CMux {
		gm.gatherLane(in.C, wordsFor32(in.BW), l)
	}
	sc := gm.scratch
	if in.DW <= 64 && in.AW <= 64 && in.BW <= 64 {
		sc.execNarrow(sc.State, in)
	} else {
		sc.execWide(in)
	}
	gm.scatterLane(in.D, wordsFor32(in.DW), l)
}

// gatherLane copies one lane's operand words into the scratch image at the
// operand's own offsets, so instruction operand fields need no translation.
func (gm *GangMachine) gatherLane(off, words int32, l int) {
	k := gm.K
	sc := gm.scratch.State
	for i := int32(0); i < words; i++ {
		sc[off+i] = gm.State[(int(off)+int(i))*k+l]
	}
}

// scatterLane copies a result from the scratch image back into one lane.
func (gm *GangMachine) scatterLane(off, words int32, l int) {
	k := gm.K
	sc := gm.scratch.State
	for i := int32(0); i < words; i++ {
		gm.State[(int(off)+int(i))*k+l] = sc[off+i]
	}
}

// memReadLane executes CMemRead for one lane directly against the strided
// memory arrays, mirroring the scalar semantics exactly: address is the first
// operand word, non-zero high address words force out-of-range, out-of-range
// reads produce zero, and the top result word is masked to the read width.
func (gm *GangMachine) memReadLane(in *Instr, l int) {
	k := gm.K
	spec := &gm.Prog.Mems[in.Lo]
	aw := int(wordsFor32(in.AW))
	dw := int(wordsFor32(in.DW))
	a := int(in.A)
	addr := gm.State[a*k+l]
	for i := 1; i < aw; i++ {
		if gm.State[(a+i)*k+l] != 0 {
			addr = uint64(spec.Depth) // force out of range
			break
		}
	}
	d := int(in.D)
	if addr < uint64(spec.Depth) {
		base := int(addr) * int(spec.WordsPer)
		mem := gm.Mems[in.Lo]
		for i := 0; i < dw; i++ {
			gm.State[(d+i)*k+l] = mem[(base+i)*k+l]
		}
	} else {
		for i := 0; i < dw; i++ {
			gm.State[(d+i)*k+l] = 0
		}
	}
	gm.State[(d+dw-1)*k+l] &= bitvec.TopMask(int(in.DW))
}

// GangKernels returns (building and memoizing on first use) the program's
// gang kernel table for k lanes: one GangFn per instruction. Tables are
// per-(Program, k) and shared — N gang machines of one cached design reuse
// one table, like the scalar kernel tables.
func (p *Program) GangKernels(k int) []GangFn {
	if k < 1 || k > MaxGangLanes {
		panic(fmt.Sprintf("emit: gang lane count %d outside [1,%d]", k, MaxGangLanes))
	}
	p.gangMu.Lock()
	defer p.gangMu.Unlock()
	if fns, ok := p.gangKernels[k]; ok {
		return fns
	}
	fns := make([]GangFn, len(p.Instrs))
	full := GangFullMask(k)
	for i := range p.Instrs {
		fns[i] = buildGangKernel(&p.Instrs[i], k, full)
	}
	if p.gangKernels == nil {
		p.gangKernels = map[int][]GangFn{}
	}
	p.gangKernels[k] = fns
	return fns
}

// buildGangKernel compiles one instruction's gang kernel. The dense all-lanes
// path inlines the operation as a loop over the K-wide lane slices (this is
// where dispatch amortization comes from); any divergence falls back to the
// per-lane gather/scatter path, as do all wide instructions (rare in
// processor designs, and the fallback is the reference interpreter itself).
func buildGangKernel(instr *Instr, k int, full uint64) GangFn {
	w := *instr // private copy: kernels outlive the caller's slice indexing
	if w.DW > 64 || w.AW > 64 || w.BW > 64 {
		return func(gm *GangMachine, mask uint64) { gm.execLanes(&w, mask) }
	}
	d := int(w.D) * k
	a := int(w.A) * k
	b := int(w.B) * k
	c := int(w.C) * k
	dm := mask(w.DW)
	am := mask(w.AW)
	awBits, bwBits := w.AW, w.BW
	lo := w.Lo

	switch w.Op {
	case CCopy:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				dd[l] = aa[l] & dm
			}
		}
	case CAdd:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l] + bb[l]) & dm
			}
		}
	case CSub:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l] - bb[l]) & dm
			}
		}
	case CMul:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l] * bb[l]) & dm
			}
		}
	case CDiv:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if bb[l] != 0 {
					r = aa[l] / bb[l]
				}
				dd[l] = r & dm
			}
		}
	case CRem:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if bb[l] != 0 {
					r = aa[l] % bb[l]
				}
				dd[l] = r & dm
			}
		}
	case CNeg:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				dd[l] = (-aa[l]) & dm
			}
		}
	case CAnd:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l] & bb[l]) & dm
			}
		}
	case COr:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l] | bb[l]) & dm
			}
		}
	case CXor:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l] ^ bb[l]) & dm
			}
		}
	case CNot:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				dd[l] = (^aa[l]) & dm
			}
		}
	case CAndR:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				var r uint64
				if aa[l] == am {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case COrR:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				var r uint64
				if aa[l] != 0 {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CXorR:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				dd[l] = (uint64(bits.OnesCount64(aa[l])) & 1) & dm
			}
		}
	case CEq:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if aa[l] == bb[l] {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CNeq:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if aa[l] != bb[l] {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CLt:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if aa[l] < bb[l] {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CLeq:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if aa[l] <= bb[l] {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CGt:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if aa[l] > bb[l] {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CGeq:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if aa[l] >= bb[l] {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CSLt:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if sext64(aa[l], awBits) < sext64(bb[l], bwBits) {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CSLeq:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if sext64(aa[l], awBits) <= sext64(bb[l], bwBits) {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CSGt:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if sext64(aa[l], awBits) > sext64(bb[l], bwBits) {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CSGeq:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if sext64(aa[l], awBits) >= sext64(bb[l], bwBits) {
					r = 1
				}
				dd[l] = r & dm
			}
		}
	case CShl:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				var r uint64
				if lo < 64 {
					r = aa[l] << uint(lo)
				}
				dd[l] = r & dm
			}
		}
	case CShr:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				var r uint64
				if lo < 64 {
					r = aa[l] >> uint(lo)
				}
				dd[l] = r & dm
			}
		}
	case CDshl:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if bb[l] < 64 {
					r = aa[l] << uint(bb[l])
				}
				dd[l] = r & dm
			}
		}
	case CDshr:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				var r uint64
				if bb[l] < 64 {
					r = aa[l] >> uint(bb[l])
				}
				dd[l] = r & dm
			}
		}
	case CCat:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb := st[d:d+k], st[a:a+k], st[b:b+k]
			for l := range dd {
				dd[l] = (aa[l]<<uint(bwBits) | bb[l]) & dm
			}
		}
	case CBits:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				dd[l] = (aa[l] >> uint(lo)) & dm
			}
		}
	case CSExt:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				dd[l] = uint64(sext64(aa[l], awBits)) & dm
			}
		}
	case CMux:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			dd, aa, bb, cc := st[d:d+k], st[a:a+k], st[b:b+k], st[c:c+k]
			for l := range dd {
				r := cc[l]
				if aa[l] != 0 {
					r = bb[l]
				}
				dd[l] = r & dm
			}
		}
	case CMemRead:
		return func(gm *GangMachine, mm uint64) {
			if mm != full {
				gm.execLanes(&w, mm)
				return
			}
			st := gm.State
			spec := &gm.Prog.Mems[lo]
			depth := uint64(spec.Depth)
			wp := int(spec.WordsPer)
			mem := gm.Mems[lo]
			dd, aa := st[d:d+k], st[a:a+k]
			for l := range dd {
				var r uint64
				if addr := aa[l]; addr < depth {
					r = mem[int(addr)*wp*k+l]
				}
				dd[l] = r & dm
			}
		}
	default:
		panic(fmt.Sprintf("emit: bad gang opcode %d", w.Op))
	}
}
