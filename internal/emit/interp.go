package emit

import (
	"fmt"
	"math/bits"

	"gsim/internal/bitvec"
)

// Machine is one executable instance of a Program: a private state image and
// memory arrays. Multiple machines can run the same Program concurrently.
type Machine struct {
	Prog  *Program
	State []uint64
	Mems  [][]uint64

	// Executed counts instructions retired since the last ResetCounters.
	// Engines add range lengths from serial context (per step or at the
	// end-of-cycle stat merge) so the hot loops stay branch-free and the
	// counter stays race-free and accurate in both evaluation modes.
	Executed uint64
}

// NewMachine instantiates a machine with the program's initial image.
func NewMachine(p *Program) *Machine {
	m := &Machine{Prog: p, State: make([]uint64, p.NumWords)}
	copy(m.State, p.Init)
	m.Mems = make([][]uint64, len(p.Mems))
	for i := range p.Mems {
		m.Mems[i] = make([]uint64, len(p.Mems[i].Init))
		copy(m.Mems[i], p.Mems[i].Init)
	}
	return m
}

// Reset restores the initial state image and memory contents.
func (m *Machine) Reset() {
	copy(m.State, m.Prog.Init)
	for i := range m.Mems {
		copy(m.Mems[i], m.Prog.Mems[i].Init)
	}
}

// mask returns the canonical mask for a width <= 64.
func mask(w int32) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Exec runs instructions [start, end) against the machine state.
func (m *Machine) Exec(start, end int32) {
	st := m.State
	ins := m.Prog.Instrs
	for i := start; i < end; i++ {
		in := &ins[i]
		if in.DW <= 64 && in.AW <= 64 && in.BW <= 64 {
			m.execNarrow(st, in)
		} else {
			m.execWide(in)
		}
	}
}

// ExecRange runs a node's compiled range.
func (m *Machine) ExecRange(r Range) { m.Exec(r.Start, r.End) }

// execNarrow handles instructions whose operands and result all fit in one
// word. This is the fast path covering nearly all instructions in processor
// designs.
func (m *Machine) execNarrow(st []uint64, in *Instr) {
	a := st[in.A]
	var b uint64
	if in.Op >= CAdd { // all binaries read B; unaries ignore garbage B=st[0]
		b = st[in.B]
	}
	var r uint64
	switch in.Op {
	case CCopy:
		r = a
	case CAdd:
		r = a + b
	case CSub:
		r = a - b
	case CMul:
		r = a * b
	case CDiv:
		if b == 0 {
			r = 0
		} else {
			r = a / b
		}
	case CRem:
		if b == 0 {
			r = 0
		} else {
			r = a % b
		}
	case CNeg:
		r = -a
	case CAnd:
		r = a & b
	case COr:
		r = a | b
	case CXor:
		r = a ^ b
	case CNot:
		r = ^a
	case CAndR:
		if a == mask(in.AW) {
			r = 1
		}
	case COrR:
		if a != 0 {
			r = 1
		}
	case CXorR:
		r = uint64(bits.OnesCount64(a)) & 1
	case CEq:
		if a == b {
			r = 1
		}
	case CNeq:
		if a != b {
			r = 1
		}
	case CLt:
		if a < b {
			r = 1
		}
	case CLeq:
		if a <= b {
			r = 1
		}
	case CGt:
		if a > b {
			r = 1
		}
	case CGeq:
		if a >= b {
			r = 1
		}
	case CSLt:
		if sext64(a, in.AW) < sext64(b, in.BW) {
			r = 1
		}
	case CSLeq:
		if sext64(a, in.AW) <= sext64(b, in.BW) {
			r = 1
		}
	case CSGt:
		if sext64(a, in.AW) > sext64(b, in.BW) {
			r = 1
		}
	case CSGeq:
		if sext64(a, in.AW) >= sext64(b, in.BW) {
			r = 1
		}
	case CShl:
		if in.Lo < 64 {
			r = a << uint(in.Lo)
		}
	case CShr:
		if in.Lo < 64 {
			r = a >> uint(in.Lo)
		}
	case CDshl:
		if b < 64 {
			r = a << uint(b)
		}
	case CDshr:
		if b < 64 {
			r = a >> uint(b)
		}
	case CCat:
		r = a<<uint(in.BW) | b
	case CBits:
		r = a >> uint(in.Lo)
	case CSExt:
		r = uint64(sext64(a, in.AW))
	case CMux:
		if a != 0 {
			r = st[in.B]
		} else {
			r = st[in.C]
		}
	case CMemRead:
		spec := &m.Prog.Mems[in.Lo]
		if a < uint64(spec.Depth) {
			r = m.Mems[in.Lo][int32(a)*spec.WordsPer]
		}
	default:
		panic(fmt.Sprintf("emit: bad narrow opcode %d", in.Op))
	}
	st[in.D] = r & mask(in.DW)
}

// sext64 sign-extends a w-bit value to int64.
func sext64(v uint64, w int32) int64 {
	if w >= 64 || w <= 0 {
		return int64(v)
	}
	sh := uint(64 - w)
	return int64(v<<sh) >> sh
}

// PeekWords returns the node's current-value words (aliasing machine state).
func (m *Machine) PeekWords(nodeID int) []uint64 {
	off := m.Prog.Off[nodeID]
	return m.State[off : off+m.Prog.WordsOf[nodeID]]
}

// Peek returns the node's current value as a BV.
func (m *Machine) Peek(nodeID int) bitvec.BV {
	n := m.Prog.Graph.Nodes[nodeID]
	return bitvec.FromWords(n.Width, m.PeekWords(nodeID))
}

// Poke overwrites an input node's value, truncating to its width, and
// reports whether the value changed.
func (m *Machine) Poke(nodeID int, v bitvec.BV) bool {
	n := m.Prog.Graph.Nodes[nodeID]
	w := bitvec.Pad(v, n.Width)
	off := m.Prog.Off[nodeID]
	changed := false
	for i, word := range w.W {
		if m.State[off+int32(i)] != word {
			changed = true
			m.State[off+int32(i)] = word
		}
	}
	return changed
}

// PeekMem returns one element of a memory.
func (m *Machine) PeekMem(memID, addr int) bitvec.BV {
	spec := &m.Prog.Mems[memID]
	off := int32(addr) * spec.WordsPer
	return bitvec.FromWords(spec.Width, m.Mems[memID][off:off+spec.WordsPer])
}

// PokeMem overwrites one element of a memory.
func (m *Machine) PokeMem(memID, addr int, v bitvec.BV) {
	spec := &m.Prog.Mems[memID]
	w := bitvec.Pad(v, spec.Width)
	copy(m.Mems[memID][int32(addr)*spec.WordsPer:], w.W)
}
