// Package rules is the declarative source of truth for the kernel
// compiler's rewrite rules: the superinstruction fusion patterns applied by
// emit.CompileChainBound and the algebraic simplification rules applied by
// the passes pipeline before partitioning. cmd/rulegen compiles the two
// tables into exhaustive Go match code (emit/fuse_gen.go and
// passes/simplify_gen.go) — the same shape sneller uses for its SSA
// simplifier: rules as data, matchers as generated code, so adding a pattern
// is one table line plus `go generate`, not another arm of a hand-written
// dispatch wall.
//
// # Fusion rules
//
// A fusion rule matches a window of two or three adjacent instructions of a
// compiled chain (execution order, left to right) and names the bound-closure
// constructor in package emit that compiles the window into one closure:
//
//	(copy _) >> (mux t? t? t?)
//
// Each parenthesized group is one instruction: an opcode name, an opcode
// class (cmp, mask, logic, eqz — see opcodeClass — or pure, the
// narrowValueBound-compilable producers), and one operand spec per operand
// slot (A, B, C in order):
//
//	_   any slot value
//	t   the slot must read the previous instruction's destination
//	t?  may-feed: at least one t?-marked slot must read it
//
// Only fully narrow windows fuse (the generated matchers check that first);
// rule order is match priority. An optional Guard is a raw Go expression
// over the matched instructions a, b (and c for triples).
//
// # Simplify rules
//
// A simplify rule is a pattern over ir expression trees, an optional Go
// guard, and a rewrite template:
//
//	{Name: "and-zero", Pat: "(and x 0)", To: "0", Comm: true}
//
// Pattern atoms: lowercase metavariables bind any subexpression (a repeated
// metavariable requires structural equality); names starting with k bind
// only constants; the literals 0, 1, and ones match constants of that value
// without binding. Guards are Go expressions over the bound metavariables
// plus e (the root expression); templates are metavariables, 0/1 (a constant
// of the root's width), or operator applications over bound metavariables.
// Comm additionally matches the rule with the root's two operands swapped.
// The generated rewriter tries rules in table order, first match wins; the
// caller re-fits the result to the original width.
package rules

//go:generate go run gsim/cmd/rulegen

// FuseRule declares one superinstruction fusion rule. Emit names the
// bound-closure constructor in package emit: func(p *Program, m *Machine,
// a, b Instr) BoundFn for pairs, with a trailing c Instr for triples.
type FuseRule struct {
	Name  string // kebab-case rule id; generates the emit.FuseRule constant
	Pat   string // instruction-window pattern, stages joined by >>
	Guard string // optional extra Go condition over a, b (, c)
	Emit  string // constructor name in package emit
}

// SimplifyRule declares one algebraic rewrite over ir expression trees.
type SimplifyRule struct {
	Name  string // kebab-case rule id; generates the passes.AlgRule constant
	Pat   string // s-expression pattern over ir operators
	Guard string // optional Go condition over bound metavariables and e
	To    string // rewrite template
	Comm  bool   // also match with the root's operands swapped
}

// FusionRules returns the fusion rule table in match-priority order: the
// two-instruction rules reproduce the retired hand-written matcher exactly
// (the equivalence test enumerates opcode x width x feed shapes against it),
// followed by the three-instruction families the hand-written dispatch never
// grew. CompileChainBound tries triples before pairs at each chain position.
func FusionRules() []FuseRule {
	return []FuseRule{
		// Specialized pairs: both halves compiled into one straight-line
		// closure body.
		{Name: "copy-mux", Pat: "(copy _) >> (mux t? t? t?)", Emit: "fuseCopyMux"},
		{Name: "cmp-mux", Pat: "(cmp _ _) >> (mux t _ _)", Emit: "fuseCmpMux"},
		{Name: "mux-mux", Pat: "(mux _ _ _) >> (mux _ t? t?)", Emit: "fuseMuxMux"},
		{Name: "alu-mux", Pat: "(pure) >> (mux t? t? t?)", Emit: "fuseAluMux"},
		{Name: "add-mask", Pat: "(add _ _) >> (mask t)", Emit: "fuseAddMask"},
		{Name: "sub-mask", Pat: "(sub _ _) >> (mask t)", Emit: "fuseSubMask"},
		// Generic pairs: any pure narrow producer through its pre-bound value
		// closure, feeding a specialized consumer tail.
		{Name: "alu-mask", Pat: "(pure) >> (mask t)", Emit: "fuseAluMask"},
		{Name: "alu-cat", Pat: "(pure) >> (cat t? t?)", Emit: "fuseAluCat"},
		{Name: "alu-logic", Pat: "(pure) >> (logic t? t?)", Emit: "fuseAluLogic"},
		{Name: "and-eqz", Pat: "(and _ _) >> (eqz t? t?)", Emit: "fuseAndEqz"},
		{Name: "alu-eq", Pat: "(pure) >> (eqz t? t?)", Emit: "fuseAluEq"},
		{Name: "and-orr", Pat: "(and _ _) >> (orr t)", Emit: "fuseAndEqz"},
		{Name: "alu-memread", Pat: "(pure) >> (memread t)", Emit: "fuseAluMemRead"},
		// Triples: the priority-encoder chains that dominate control logic
		// compile to runs of adjacent muxes; collapsing three instructions
		// into one closure removes two dispatches instead of one.
		{Name: "mux-mux-mux", Pat: "(mux _ _ _) >> (mux _ t? t?) >> (mux _ t? t?)", Emit: "fuseMuxMuxMux"},
		{Name: "cmp-mux-mux", Pat: "(cmp _ _) >> (mux t _ _) >> (mux _ t? t?)", Emit: "fuseCmpMuxMux"},
	}
}

// SimplifyRules returns the algebraic rule table. Rules sharing a root
// operator are tried in table order; keep the constant-select mux rules
// before the structural mux rules, and the self-compare rules before the
// compare-with-zero rules, so the cheaper rewrite wins.
func SimplifyRules() []SimplifyRule {
	return []SimplifyRule{
		{Name: "add-zero", Pat: "(add x 0)", To: "x", Comm: true},
		{Name: "sub-zero", Pat: "(sub x 0)", To: "x"},
		{Name: "sub-self", Pat: "(sub x x)", To: "0"},
		{Name: "mul-zero", Pat: "(mul x 0)", To: "0", Comm: true},
		{Name: "mul-one", Pat: "(mul x 1)", To: "x", Comm: true},
		{Name: "div-one", Pat: "(div x 1)", To: "x"},
		{Name: "rem-one", Pat: "(rem x 1)", To: "0"},
		{Name: "and-zero", Pat: "(and x 0)", To: "0", Comm: true},
		// The mask must cover x completely, or the and still truncates.
		{Name: "and-ones", Pat: "(and x k)", Guard: "isOnes(k) && k.Width >= x.Width", To: "x", Comm: true},
		{Name: "and-self", Pat: "(and x x)", To: "x"},
		{Name: "or-zero", Pat: "(or x 0)", To: "x", Comm: true},
		{Name: "or-self", Pat: "(or x x)", To: "x"},
		{Name: "xor-zero", Pat: "(xor x 0)", To: "x", Comm: true},
		{Name: "xor-self", Pat: "(xor x x)", To: "0"},
		{Name: "not-not", Pat: "(not (not x))", To: "x"},
		{Name: "andr-bool", Pat: "(andr x)", Guard: "x.Width == 1", To: "x"},
		{Name: "orr-bool", Pat: "(orr x)", Guard: "x.Width == 1", To: "x"},
		{Name: "xorr-bool", Pat: "(xorr x)", Guard: "x.Width == 1", To: "x"},
		{Name: "eq-self", Pat: "(eq x x)", To: "1"},
		{Name: "neq-self", Pat: "(neq x x)", To: "0"},
		// x != 0 is the or-reduction; saves the constant operand slot and
		// feeds the and-orr fusion family.
		{Name: "neq-zero", Pat: "(neq x 0)", To: "(orr x)", Comm: true},
		// Unsigned compare against zero folds to a constant or a reduction.
		{Name: "lt-self", Pat: "(lt x x)", To: "0"},
		{Name: "lt-zero", Pat: "(lt x 0)", To: "0"},
		{Name: "zero-lt", Pat: "(lt 0 x)", To: "(orr x)"},
		{Name: "gt-self", Pat: "(gt x x)", To: "0"},
		{Name: "gt-zero", Pat: "(gt x 0)", To: "(orr x)"},
		{Name: "zero-gt", Pat: "(gt 0 x)", To: "0"},
		{Name: "leq-self", Pat: "(leq x x)", To: "1"},
		{Name: "leq-zero", Pat: "(leq x 0)", To: "(not (orr x))"},
		{Name: "zero-leq", Pat: "(leq 0 x)", To: "1"},
		{Name: "geq-self", Pat: "(geq x x)", To: "1"},
		{Name: "geq-zero", Pat: "(geq x 0)", To: "1"},
		{Name: "zero-geq", Pat: "(geq 0 x)", To: "(not (orr x))"},
		{Name: "mux-sel-zero", Pat: "(mux k x y)", Guard: "isZero(k)", To: "y"},
		{Name: "mux-sel-one", Pat: "(mux k x y)", Guard: "!isZero(k)", To: "x"},
		{Name: "mux-same", Pat: "(mux s x x)", To: "x"},
		{Name: "mux-bool", Pat: "(mux s 1 0)", Guard: "e.Width == 1", To: "s"},
		{Name: "mux-bool-not", Pat: "(mux s 0 1)", Guard: "e.Width == 1", To: "(not s)"},
	}
}
