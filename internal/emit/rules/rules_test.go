package rules

import (
	"os"
	"strings"
	"testing"
)

// TestValidate checks the shipped rule tables validate — the generator
// refuses to run otherwise, so this is the first thing to fail after a bad
// table edit.
func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParseFusePatRejects pins the fusion-pattern grammar's negative space:
// each malformed window must be refused with a diagnostic, not silently
// compiled into a matcher that can never fire (or fires on everything).
func TestParseFusePatRejects(t *testing.T) {
	cases := []struct {
		name string
		pat  string
	}{
		{"one-stage", "(add _ _)"},
		{"four-stages", "(add _ _) >> (mask t) >> (mask t) >> (mask t)"},
		{"unknown-op", "(frob _ _) >> (mask t)"},
		{"bad-arity", "(add _) >> (mask t)"},
		{"feed-in-stage-zero", "(add t _) >> (mask t)"},
		{"stage-reads-nothing", "(add _ _) >> (mask _)"},
		{"pure-with-args", "(pure _) >> (mask t)"},
		{"pure-not-first", "(add _ _) >> (pure)"},
		{"unknown-spec", "(add _ _) >> (mask q)"},
		{"unparenthesized", "add _ _ >> (mask t)"},
	}
	for _, c := range cases {
		if _, err := parseFusePat(c.pat); err == nil {
			t.Errorf("%s: pattern %q parsed, want error", c.name, c.pat)
		}
	}
}

// TestParseFusePatStages checks the parsed structure of a representative
// window.
func TestParseFusePatStages(t *testing.T) {
	stages, err := parseFusePat("(cmp _ _) >> (mux t _ _) >> (mux _ t? t?)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(stages))
	}
	if stages[0].op != "cmp" || len(stages[0].args) != 2 {
		t.Fatalf("stage 0: %+v", stages[0])
	}
	if stages[1].args[0] != "t" || stages[2].args[1] != "t?" {
		t.Fatalf("operand specs not preserved: %+v", stages)
	}
}

// TestParseSexpr pins the simplify-pattern parser on shape and rejection.
func TestParseSexpr(t *testing.T) {
	e, err := parseSexpr("(mux s (not x) 0)")
	if err != nil {
		t.Fatal(err)
	}
	if e.op != "mux" || len(e.args) != 3 || e.args[1].op != "not" || e.args[2].atom != "0" {
		t.Fatalf("parsed shape wrong: %+v", e)
	}
	for _, bad := range []string{"", "(and x", "and x)", "(and x 0) y", "()", "((and) x 0)"} {
		if _, err := parseSexpr(bad); err == nil {
			t.Errorf("%q parsed, want error", bad)
		}
	}
}

// TestValidateRejectsBadSimplifyRules runs the checkers on rules that must
// be refused: unknown operators, wrong arities, unbound template
// metavariables, and metavariables shadowing generated identifiers.
func TestValidateRejectsBadSimplifyRules(t *testing.T) {
	check := func(pat, to string) error {
		p, err := parseSexpr(pat)
		if err != nil {
			return err
		}
		binds := map[string]bool{}
		if err := checkPat(p, binds); err != nil {
			return err
		}
		tt, err := parseSexpr(to)
		if err != nil {
			return err
		}
		return checkTo(tt, binds)
	}
	cases := []struct{ pat, to string }{
		{"(frob x 0)", "x"},        // unknown operator
		{"(not x y)", "x"},         // wrong arity
		{"(and x 0)", "y"},         // unbound template metavariable
		{"(and e 0)", "e"},         // metavariable shadows the root identifier
		{"(bits x)", "x"},          // parameterized op is not patternable
		{"(and x 0)", "(frob x)"},  // unknown template operator
		{"(and x 0)", "(not x y)"}, // template arity
		{"(and X 0)", "X"},         // uppercase is not a metavariable
	}
	for _, c := range cases {
		if err := check(c.pat, c.to); err == nil {
			t.Errorf("pat %q to %q accepted, want error", c.pat, c.to)
		}
	}
}

func TestGoName(t *testing.T) {
	for in, want := range map[string]string{
		"copy-mux":    "CopyMux",
		"mux-mux-mux": "MuxMuxMux",
		"and-eqz":     "AndEqz",
		"neq-zero":    "NeqZero",
	} {
		if got := goName(in); got != want {
			t.Errorf("goName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestGeneratedFilesFresh regenerates both matchers and compares them
// byte-for-byte against the committed files — the same check CI runs via
// `go generate` + `git diff`, but hermetic, so a stale generated file fails
// `go test ./...` locally too.
func TestGeneratedFilesFresh(t *testing.T) {
	for _, f := range []struct {
		path string
		gen  func() ([]byte, error)
	}{
		{"../fuse_gen.go", GenerateFuse},
		{"../../passes/simplify_gen.go", GenerateSimplify},
	} {
		fresh, err := f.gen()
		if err != nil {
			t.Fatalf("%s: generator failed: %v", f.path, err)
		}
		committed, err := os.ReadFile(f.path)
		if err != nil {
			t.Fatalf("%s: %v", f.path, err)
		}
		if string(fresh) != string(committed) {
			t.Fatalf("%s is stale — run `go generate ./internal/emit/...` and commit the result", f.path)
		}
	}
}

// TestGeneratorOutputShape spot-checks structural properties of the
// generated sources that the type system can't: the DO-NOT-EDIT header, one
// enum constant per table line, and no matcher case falling through to a
// wrong-priority rule (rule order in the table is match priority, so the
// generated source must mention the rules in table order within each
// consumer group).
func TestGeneratorOutputShape(t *testing.T) {
	fuse, err := GenerateFuse()
	if err != nil {
		t.Fatal(err)
	}
	simp, err := GenerateSimplify()
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{string(fuse), string(simp)} {
		if !strings.HasPrefix(src, "// Code generated by rulegen") {
			t.Fatal("generated file missing DO NOT EDIT header")
		}
	}
	fs := string(fuse)
	for _, r := range FusionRules() {
		if !strings.Contains(fs, "FuseRule"+goName(r.Name)) {
			t.Errorf("fusion rule %q has no generated constant", r.Name)
		}
		if !strings.Contains(fs, r.Emit+"(") {
			t.Errorf("fusion rule %q: constructor %s never called", r.Name, r.Emit)
		}
	}
	ss := string(simp)
	for _, r := range SimplifyRules() {
		if !strings.Contains(ss, "AlgRule"+goName(r.Name)) {
			t.Errorf("simplify rule %q has no generated constant", r.Name)
		}
	}
	// Priority order: and-eqz must be tried before alu-eq in the generated
	// pair matcher (an and feeding eq matches both; the table puts the
	// specialized rule first).
	if i, j := strings.Index(fs, "FuseRuleAndEqz\n"), strings.Index(fs, "FuseRuleAluEq\n"); i < 0 || j < 0 || i > j {
		t.Error("generated matcher does not try and-eqz before alu-eq")
	}
}
