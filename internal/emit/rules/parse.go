package rules

import (
	"fmt"
	"regexp"
	"strings"
)

// opcodeConst maps a pattern opcode name to its emit.OpCode constant. The
// enumeration must stay in sync with emit/program.go; the generated fusion
// matcher referencing a missing constant fails to compile, so drift cannot
// land silently.
var opcodeConst = map[string]string{
	"copy": "CCopy", "add": "CAdd", "sub": "CSub", "mul": "CMul",
	"div": "CDiv", "rem": "CRem", "neg": "CNeg", "and": "CAnd",
	"or": "COr", "xor": "CXor", "not": "CNot", "andr": "CAndR",
	"orr": "COrR", "xorr": "CXorR", "eq": "CEq", "neq": "CNeq",
	"lt": "CLt", "leq": "CLeq", "gt": "CGt", "geq": "CGeq",
	"slt": "CSLt", "sleq": "CSLeq", "sgt": "CSGt", "sgeq": "CSGeq",
	"shl": "CShl", "shr": "CShr", "dshl": "CDshl", "dshr": "CDshr",
	"cat": "CCat", "bits": "CBits", "sext": "CSExt", "mux": "CMux",
	"memread": "CMemRead",
}

// opcodeArity gives the number of operand slots each opcode reads (A, B, C
// in order); patterns must spell exactly this many operand specs.
var opcodeArity = map[string]int{
	"copy": 1, "neg": 1, "not": 1, "andr": 1, "orr": 1, "xorr": 1,
	"shl": 1, "shr": 1, "bits": 1, "sext": 1, "memread": 1,
	"add": 2, "sub": 2, "mul": 2, "div": 2, "rem": 2, "and": 2, "or": 2,
	"xor": 2, "eq": 2, "neq": 2, "lt": 2, "leq": 2, "gt": 2, "geq": 2,
	"slt": 2, "sleq": 2, "sgt": 2, "sgeq": 2, "dshl": 2, "dshr": 2, "cat": 2,
	"mux": 3,
}

// opcodeClass names the opcode sets usable in fusion patterns. Members are
// listed in enum order; every member of a class must share one arity. The
// pseudo-class pure (any narrowValueBound-compilable producer) is handled
// separately: it takes no operand specs and is only valid as a window's
// first instruction.
var opcodeClass = map[string][]string{
	"cmp":   {"eq", "neq", "lt", "leq", "gt", "geq", "slt", "sleq", "sgt", "sgeq"},
	"mask":  {"copy", "bits"},
	"logic": {"and", "or", "xor"},
	"eqz":   {"eq", "neq"},
}

// irOpConst maps a simplify-pattern operator name to its ir.Op constant.
var irOpConst = map[string]string{
	"add": "ir.OpAdd", "sub": "ir.OpSub", "mul": "ir.OpMul", "div": "ir.OpDiv",
	"rem": "ir.OpRem", "neg": "ir.OpNeg", "and": "ir.OpAnd", "or": "ir.OpOr",
	"xor": "ir.OpXor", "not": "ir.OpNot", "andr": "ir.OpAndR",
	"orr": "ir.OpOrR", "xorr": "ir.OpXorR", "eq": "ir.OpEq",
	"neq": "ir.OpNeq", "lt": "ir.OpLt", "leq": "ir.OpLeq", "gt": "ir.OpGt",
	"geq": "ir.OpGeq", "slt": "ir.OpSLt", "sleq": "ir.OpSLeq",
	"sgt": "ir.OpSGt", "sgeq": "ir.OpSGeq", "dshl": "ir.OpDshl",
	"dshr": "ir.OpDshr", "cat": "ir.OpCat", "mux": "ir.OpMux",
}

// irOpArity mirrors the ir operator arities for pattern validation. The
// parameterized operators (bits, shl, shr, pad, sext) are deliberately
// absent: their rewrites depend on Hi/Lo/width parameters the template
// language cannot express, so they stay hand-written in rewriteOnce.
var irOpArity = map[string]int{
	"add": 2, "sub": 2, "mul": 2, "div": 2, "rem": 2, "and": 2, "or": 2,
	"xor": 2, "eq": 2, "neq": 2, "lt": 2, "leq": 2, "gt": 2, "geq": 2,
	"slt": 2, "sleq": 2, "sgt": 2, "sgeq": 2, "dshl": 2, "dshr": 2, "cat": 2,
	"neg": 1, "not": 1, "andr": 1, "orr": 1, "xorr": 1,
	"mux": 3,
}

// irUnary marks the ir operators built with ir.Unary in templates.
var irUnary = map[string]bool{"neg": true, "not": true, "andr": true, "orr": true, "xorr": true}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(-[a-z0-9]+)*$`)
var metavarRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// reservedIdents are Go identifiers the generated simplify code uses itself;
// metavariables must not shadow them.
var reservedIdents = map[string]bool{
	"e": true, "ir": true, "isZero": true, "isOne": true, "isOnes": true,
	"isConst": true, "constOf": true, "fit": true,
}

// fuseStage is one parsed instruction of a fusion window.
type fuseStage struct {
	op   string   // opcode name, class name, or "pure"
	args []string // one of "_", "t", "t?" per operand slot
}

// parseFusePat parses a fusion window pattern into its stages.
func parseFusePat(pat string) ([]fuseStage, error) {
	parts := strings.Split(pat, ">>")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("window must have 2 or 3 instructions, got %d", len(parts))
	}
	stages := make([]fuseStage, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "(") || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("stage %d: %q is not parenthesized", i, part)
		}
		fields := strings.Fields(part[1 : len(part)-1])
		if len(fields) == 0 {
			return nil, fmt.Errorf("stage %d: empty instruction", i)
		}
		st := fuseStage{op: fields[0], args: fields[1:]}
		if err := checkStage(st, i, len(parts)); err != nil {
			return nil, err
		}
		stages[i] = st
	}
	return stages, nil
}

func checkStage(st fuseStage, idx, total int) error {
	if st.op == "pure" {
		if idx != 0 {
			return fmt.Errorf("stage %d: pure is only valid as the first instruction", idx)
		}
		if len(st.args) != 0 {
			return fmt.Errorf("stage %d: pure takes no operand specs", idx)
		}
		return nil
	}
	arity := -1
	if members, ok := opcodeClass[st.op]; ok {
		for _, m := range members {
			if arity >= 0 && opcodeArity[m] != arity {
				return fmt.Errorf("class %s mixes arities", st.op)
			}
			arity = opcodeArity[m]
		}
	} else if _, ok := opcodeConst[st.op]; ok {
		arity = opcodeArity[st.op]
	} else {
		return fmt.Errorf("stage %d: unknown opcode or class %q", idx, st.op)
	}
	if len(st.args) != arity {
		return fmt.Errorf("stage %d: %s takes %d operand specs, got %d", idx, st.op, arity, len(st.args))
	}
	mayFeed := false
	for j, a := range st.args {
		switch a {
		case "_":
		case "t", "t?":
			if idx == 0 {
				return fmt.Errorf("stage 0: %q has no previous instruction to feed from", a)
			}
			mayFeed = mayFeed || a == "t?"
		default:
			return fmt.Errorf("stage %d operand %d: unknown spec %q", idx, j, a)
		}
	}
	if idx > 0 && !mayFeed && !strings.Contains(strings.Join(st.args, " "), "t") {
		return fmt.Errorf("stage %d reads nothing from the previous instruction", idx)
	}
	return nil
}

// sexpr is a parsed simplify pattern or template node: either an atom
// (metavariable or constant matcher) or an operator application.
type sexpr struct {
	atom string
	op   string
	args []*sexpr
}

// parseSexpr parses one s-expression; the whole input must be consumed.
func parseSexpr(s string) (*sexpr, error) {
	toks := tokenize(s)
	e, rest, err := parseTokens(toks)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing tokens %v", rest)
	}
	return e, nil
}

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

func parseTokens(toks []string) (*sexpr, []string, error) {
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("unexpected end of pattern")
	}
	if toks[0] != "(" {
		if toks[0] == ")" {
			return nil, nil, fmt.Errorf("unexpected )")
		}
		return &sexpr{atom: toks[0]}, toks[1:], nil
	}
	toks = toks[1:]
	if len(toks) == 0 || toks[0] == "(" || toks[0] == ")" {
		return nil, nil, fmt.Errorf("expected operator after (")
	}
	node := &sexpr{op: toks[0]}
	toks = toks[1:]
	for {
		if len(toks) == 0 {
			return nil, nil, fmt.Errorf("missing )")
		}
		if toks[0] == ")" {
			return node, toks[1:], nil
		}
		arg, rest, err := parseTokens(toks)
		if err != nil {
			return nil, nil, err
		}
		node.args = append(node.args, arg)
		toks = rest
	}
}

// checkPat validates a simplify pattern tree and collects its metavariables.
func checkPat(e *sexpr, binds map[string]bool) error {
	if e.atom != "" {
		switch e.atom {
		case "_", "0", "1", "ones":
			return nil
		}
		if !metavarRE.MatchString(e.atom) {
			return fmt.Errorf("bad atom %q", e.atom)
		}
		if reservedIdents[e.atom] {
			return fmt.Errorf("metavariable %q shadows a generated identifier", e.atom)
		}
		binds[e.atom] = true
		return nil
	}
	arity, ok := irOpArity[e.op]
	if !ok {
		return fmt.Errorf("unknown or non-pattern operator %q", e.op)
	}
	if len(e.args) != arity {
		return fmt.Errorf("%s takes %d args, got %d", e.op, arity, len(e.args))
	}
	for _, a := range e.args {
		if err := checkPat(a, binds); err != nil {
			return err
		}
	}
	return nil
}

// checkTo validates a rewrite template against the pattern's metavariables.
func checkTo(e *sexpr, binds map[string]bool) error {
	if e.atom != "" {
		switch e.atom {
		case "0", "1":
			return nil
		}
		if !binds[e.atom] {
			return fmt.Errorf("template uses unbound metavariable %q", e.atom)
		}
		return nil
	}
	arity, ok := irOpArity[e.op]
	if !ok {
		return fmt.Errorf("template uses unknown operator %q", e.op)
	}
	if len(e.args) != arity {
		return fmt.Errorf("template %s takes %d args, got %d", e.op, arity, len(e.args))
	}
	for _, a := range e.args {
		if err := checkTo(a, binds); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks both rule tables: names well-formed and unique, patterns
// parse, fusion constructors named, simplify templates closed over their
// patterns' metavariables. The generator refuses to run on a table that does
// not validate, and the rules test suite calls this directly.
func Validate() error {
	seen := map[string]bool{}
	for _, r := range FusionRules() {
		if !nameRE.MatchString(r.Name) {
			return fmt.Errorf("fusion rule %q: bad name", r.Name)
		}
		if seen["f/"+r.Name] {
			return fmt.Errorf("fusion rule %q: duplicate name", r.Name)
		}
		seen["f/"+r.Name] = true
		if r.Emit == "" {
			return fmt.Errorf("fusion rule %q: no emit constructor", r.Name)
		}
		if _, err := parseFusePat(r.Pat); err != nil {
			return fmt.Errorf("fusion rule %q: %v", r.Name, err)
		}
	}
	for _, r := range SimplifyRules() {
		if !nameRE.MatchString(r.Name) {
			return fmt.Errorf("simplify rule %q: bad name", r.Name)
		}
		if seen["s/"+r.Name] {
			return fmt.Errorf("simplify rule %q: duplicate name", r.Name)
		}
		seen["s/"+r.Name] = true
		pat, err := parseSexpr(r.Pat)
		if err != nil {
			return fmt.Errorf("simplify rule %q: pattern: %v", r.Name, err)
		}
		if pat.atom != "" {
			return fmt.Errorf("simplify rule %q: pattern root must be an operator", r.Name)
		}
		binds := map[string]bool{}
		if err := checkPat(pat, binds); err != nil {
			return fmt.Errorf("simplify rule %q: pattern: %v", r.Name, err)
		}
		to, err := parseSexpr(r.To)
		if err != nil {
			return fmt.Errorf("simplify rule %q: template: %v", r.Name, err)
		}
		if err := checkTo(to, binds); err != nil {
			return fmt.Errorf("simplify rule %q: %v", r.Name, err)
		}
		if r.Comm && len(pat.args) != 2 {
			return fmt.Errorf("simplify rule %q: Comm requires a binary root", r.Name)
		}
	}
	return nil
}

// goName converts a kebab-case rule name to its CamelCase constant suffix.
func goName(name string) string {
	var sb strings.Builder
	for _, part := range strings.Split(name, "-") {
		sb.WriteString(strings.ToUpper(part[:1]))
		sb.WriteString(part[1:])
	}
	return sb.String()
}
