package emit

// genericFusion gates the generic Alu* fusion families (the specialized
// patterns are always on). It exists as a compile-time experiment knob for
// the benchmarks; both settings are conformance-tested.
const genericFusion = true

// Superinstruction fusion: a peephole pass over an instruction chain that
// collapses common two-instruction patterns into single pre-bound closures.
// The per-instruction indirect call is the dominant cost of the
// closure-threaded kernels on narrow designs (GSIM's emitted C++ pays no
// such dispatch; Manticore and Parendi both report instruction-granularity
// overhead dominating BSP-style RTL simulation), so halving the call count
// on the hottest idioms is a direct win.
//
// A fused closure performs exactly the stores of its two source instructions
// in their original order — the intermediate result is still written to its
// state slot. That makes fusion trivially bit-identical to sequential
// execution (the lockstep and fuzz suites pin this): the only thing removed
// is dispatch, plus the intermediate value is forwarded through a register
// where the match proves the slot identity.
//
// Fusion is applied at kernel-chain build time (Program.CompileChainBound), never
// to the instruction stream itself, so Instrs, Code ranges, and instruction
// counting are untouched: a fused superinstruction still retires two
// instructions.

// FusePattern identifies one fusible two-instruction idiom. The pattern
// coverage test sweeps [FuseNone+1, NumFusePatterns) and fails if a pattern
// lands without a test exemplar, so the enumeration doubles as the test
// checklist — keep NumFusePatterns last.
type FusePattern uint8

// The implemented fusion patterns. The first group is fully specialized —
// both halves compiled into one straight-line closure body. The Alu* group
// is the generic long tail: any pure narrow producer (narrowValueBound)
// compiled as a pre-bound value closure feeding a specialized consumer tail;
// it costs
// one thin value call where the specialized patterns cost none, and still
// removes the second kernel dispatch. The split is measured: the specialized
// group covers the hottest idioms in the RV32 core and the synthetic
// profiles, the generic group roughly triples fusion coverage.
const (
	// FuseNone: the pair does not fuse.
	FuseNone FusePattern = iota
	// FuseCopyMux: a copy (ref/pad/const root) feeding any operand of a mux.
	FuseCopyMux
	// FuseCmpMux: a comparison result selecting a mux — the ubiquitous
	// "cond ? a : b" of priority logic and ALU flag selects.
	FuseCmpMux
	// FuseAddMask: an add whose result is immediately truncated or sliced
	// (FIRRTL add widens by one bit; the following bits/pad masks it back
	// down, or picks the carry).
	FuseAddMask
	// FuseSubMask: the subtract twin of FuseAddMask.
	FuseSubMask
	// FuseAndEqz: a bitwise and feeding an equality/inequality test or an
	// or-reduction — mask-then-test control logic.
	FuseAndEqz
	// FuseMuxMux: a mux feeding an arm of the next mux — priority-encoder
	// chains, which compile to long runs of adjacent muxes.
	FuseMuxMux
	// FuseAluMask: any other pure producer into a truncation (copy, or bits
	// at any shift) — bus slicing and width fitting.
	FuseAluMask
	// FuseAluMux: any pure producer into any operand of a mux.
	FuseAluMux
	// FuseAluCat: any pure producer into either side of a concatenation —
	// bus assembly chains.
	FuseAluCat
	// FuseAluLogic: any pure producer (comparisons included) into a binary
	// and/or/xor — flag combining.
	FuseAluLogic
	// FuseAluEq: any pure producer into an equality/inequality test.
	FuseAluEq
	// FuseAluMemRead: an address computation feeding a memory read port.
	FuseAluMemRead

	// NumFusePatterns is the enumeration sentinel: keep it last.
	NumFusePatterns
)

var fusePatternNames = [NumFusePatterns]string{
	"none", "copy-mux", "cmp-mux", "add-mask", "sub-mask", "and-eqz", "mux-mux",
	"alu-mask", "alu-mux", "alu-cat", "alu-logic", "alu-eq", "alu-memread",
}

// String names the pattern.
func (p FusePattern) String() string {
	if int(p) < len(fusePatternNames) {
		return fusePatternNames[p]
	}
	return "invalid"
}

// isCmp reports whether op is one of the ten comparisons (0/1 result).
func isCmp(op OpCode) bool { return op >= CEq && op <= CSGeq }

// narrow reports whether every width of the instruction fits one word.
func narrow(in Instr) bool { return in.DW <= 64 && in.AW <= 64 && in.BW <= 64 }

// pureNarrow reports whether the instruction is a pure narrow value producer
// — compilable by narrowValueBound into a pre-bound value closure.
// Everything except the memory read (which needs the machine's memory
// arrays).
func pureNarrow(in Instr) bool { return narrow(in) && in.Op >= CCopy && in.Op < CMemRead }

// MatchFusion classifies an adjacent instruction pair (a executes first).
// Only fully narrow pairs fuse; the wide regime goes through the width-class
// kernels instead. Matching is purely structural — opcodes and the identity
// of a's destination slot among b's operand slots — so it is valid on any
// chain regardless of which nodes the instructions came from. The
// specialized patterns are tried first; the generic Alu* families catch the
// remaining pure producers.
func MatchFusion(a, b Instr) FusePattern {
	if !narrow(a) || !narrow(b) {
		return FuseNone
	}
	pure := pureNarrow(a) && genericFusion
	switch b.Op {
	case CMux:
		feedsArm := b.B == a.D || b.C == a.D
		feeds := b.A == a.D || feedsArm
		switch {
		case a.Op == CCopy && feeds:
			return FuseCopyMux
		case isCmp(a.Op) && b.A == a.D:
			return FuseCmpMux
		case a.Op == CMux && feedsArm:
			return FuseMuxMux
		case pure && feeds:
			return FuseAluMux
		}
	case CCopy, CBits:
		if b.A != a.D {
			return FuseNone
		}
		switch {
		case a.Op == CAdd:
			return FuseAddMask
		case a.Op == CSub:
			return FuseSubMask
		case pure:
			return FuseAluMask
		}
	case CCat:
		if pure && (b.A == a.D || b.B == a.D) {
			return FuseAluCat
		}
	case CAnd, COr, CXor:
		// b.Op == CAnd also terminates an a == CAnd chain; the generic
		// family handles it like any other producer.
		if pure && (b.A == a.D || b.B == a.D) {
			return FuseAluLogic
		}
	case CEq, CNeq:
		if a.Op == CAnd && (b.A == a.D || b.B == a.D) {
			return FuseAndEqz
		}
		if pure && (b.A == a.D || b.B == a.D) {
			return FuseAluEq
		}
	case COrR:
		if a.Op == CAnd && b.A == a.D {
			return FuseAndEqz
		}
	case CMemRead:
		if pure && b.A == a.D {
			return FuseAluMemRead
		}
	}
	return FuseNone
}

// cmpKind classifies the three comparison kernels the ten comparison opcodes
// reduce to.
type cmpKind uint8

const (
	cmpEqK cmpKind = iota // x == y
	cmpLtU                // x < y, unsigned
	cmpLtS                // x < y, signed
)

// cmpParts normalizes a comparison instruction: the ten opcodes reduce to
// three kernels plus an operand swap and a result negation, resolved at
// compile time: a<=b == !(b<a), a>b == b<a, a>=b == !(a<b), a!=b == !(a==b).
func cmpParts(a Instr) (x, y int, xw, yw int32, negBit uint64, kind cmpKind) {
	x, y = int(a.A), int(a.B)
	xw, yw = a.AW, a.BW
	var neg bool
	switch a.Op {
	case CEq:
		kind = cmpEqK
	case CNeq:
		kind, neg = cmpEqK, true
	case CLt:
		kind = cmpLtU
	case CLeq:
		x, y, xw, yw = y, x, yw, xw
		kind, neg = cmpLtU, true
	case CGt:
		x, y, xw, yw = y, x, yw, xw
		kind = cmpLtU
	case CGeq:
		kind, neg = cmpLtU, true
	case CSLt:
		kind = cmpLtS
	case CSLeq:
		x, y, xw, yw = y, x, yw, xw
		kind, neg = cmpLtS, true
	case CSGt:
		x, y, xw, yw = y, x, yw, xw
		kind = cmpLtS
	case CSGeq:
		kind, neg = cmpLtS, true
	}
	return x, y, xw, yw, b2u(neg), kind
}

// FusionStats counts, per pattern, how many adjacent pairs of the chain
// would fuse — the diagnostic behind cmd/gsim-diag's fusion report.
func FusionStats(ins []Instr) (counts [NumFusePatterns]int) {
	for i := 0; i+1 < len(ins); i++ {
		if pat := MatchFusion(ins[i], ins[i+1]); pat != FuseNone {
			counts[pat]++
			i++
		}
	}
	return counts
}
