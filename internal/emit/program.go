// Package emit compiles an optimized ir.Graph into a flat, executable
// Program: a three-address instruction stream over a dense []uint64 state
// image. This is the Go analogue of GSIM emitting C++ simulation code — the
// "emission" step whose time, code size, and data size the paper reports in
// Table IV.
//
// Layout:
//   - every node gets a word-aligned storage slot (registers get two: current
//     and next);
//   - constants live in a deduplicated pool inside the state image;
//   - every node's expression tree compiles to a contiguous instruction range
//     with private temporaries, so engines can evaluate nodes independently
//     (including concurrently) by executing ranges.
package emit

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// OpCode is a compiled instruction operator.
type OpCode uint8

// Instruction opcodes. CCopy implements Ref/Pad roots; CMemRead reads the
// memory identified by Instr.Lo at the address held in the A slot.
const (
	CInvalid OpCode = iota
	CCopy
	CAdd
	CSub
	CMul
	CDiv
	CRem
	CNeg
	CAnd
	COr
	CXor
	CNot
	CAndR
	COrR
	CXorR
	CEq
	CNeq
	CLt
	CLeq
	CGt
	CGeq
	CSLt
	CSLeq
	CSGt
	CSGeq
	CShl
	CShr
	CDshl
	CDshr
	CCat
	CBits
	CSExt
	CMux
	CMemRead

	// cOpCount is the enumeration sentinel: keep it last. The kernel
	// coverage test sweeps [CCopy, cOpCount), so an opcode added above
	// without a compileKernel case fails the suite instead of panicking at
	// engine construction.
	cOpCount
)

var opcodeOf = map[ir.Op]OpCode{
	ir.OpAdd: CAdd, ir.OpSub: CSub, ir.OpMul: CMul, ir.OpDiv: CDiv, ir.OpRem: CRem,
	ir.OpNeg: CNeg, ir.OpAnd: CAnd, ir.OpOr: COr, ir.OpXor: CXor, ir.OpNot: CNot,
	ir.OpAndR: CAndR, ir.OpOrR: COrR, ir.OpXorR: CXorR,
	ir.OpEq: CEq, ir.OpNeq: CNeq, ir.OpLt: CLt, ir.OpLeq: CLeq, ir.OpGt: CGt, ir.OpGeq: CGeq,
	ir.OpSLt: CSLt, ir.OpSLeq: CSLeq, ir.OpSGt: CSGt, ir.OpSGeq: CSGeq,
	ir.OpShl: CShl, ir.OpShr: CShr, ir.OpDshl: CDshl, ir.OpDshr: CDshr,
	ir.OpCat: CCat, ir.OpBits: CBits, ir.OpPad: CCopy, ir.OpSExt: CSExt, ir.OpMux: CMux,
}

// Instr is one compiled operation: State[D..] = op(State[A..], State[B..],
// State[C..]). Widths are in bits; word counts derive from widths.
type Instr struct {
	Op         OpCode
	DW, AW, BW int32 // destination and source widths (bits)
	D, A, B, C int32 // word offsets into the state image
	Hi, Lo     int32 // bits range; static shift amount in Lo; memory ID in Lo for CMemRead
}

// InstrBytes is the size of one instruction — the unit of the "code size"
// metric (Table IV analogue).
const InstrBytes = int(unsafe.Sizeof(Instr{}))

// Range is a half-open instruction index range [Start, End).
type Range struct{ Start, End int32 }

// Len returns the number of instructions in the range.
func (r Range) Len() int32 { return r.End - r.Start }

// MemSpec describes a compiled memory image.
type MemSpec struct {
	Depth    int
	Width    int
	WordsPer int32
	Init     []uint64 // Depth*WordsPer words
}

// Program is a compiled circuit.
type Program struct {
	Graph    *ir.Graph
	NumWords int
	Init     []uint64 // initial state image: const pool + register init values
	Instrs   []Instr

	// KernelsBase is the pre-fusion, pre-width-class kernel table — the
	// benchmarking baseline behind -eval kernel-nofuse (engines on the
	// default kernel path compile machine-bound chains instead, see
	// CompileChainBound). Built on demand by BuildKernelsBase; nil
	// otherwise.
	KernelsBase []KernelFn

	// Per node-ID tables (indexed by ir.Node.ID).
	Code    []Range // instruction range evaluating the node
	Off     []int32 // value storage (registers: current value)
	NextOff []int32 // registers: next-value storage; otherwise == Off
	WordsOf []int32 // state words per node value

	// Memory write-port expression result slots, per node ID.
	WAddrOff, WDataOff, WEnOff []int32

	Mems []MemSpec

	EmitTime time.Duration

	// Memoized design hash (see hash.go) and the once guarding the lazy
	// KernelsBase build — both keep a Program safely shareable across
	// concurrently constructed engines (the server's compiled-design cache
	// hands one Program to many sessions).
	hashOnce sync.Once
	hash     [32]byte
	kernOnce sync.Once

	// Gang kernel tables, built lazily per lane count by GangKernels and
	// shared by every GangMachine of that shape (see gang.go). None of this
	// affects the design hash: gang tables are execution strategy, not
	// design identity.
	gangMu      sync.Mutex
	gangKernels map[int][]GangFn
}

// CodeBytes returns the emitted code size in bytes (Table IV "Code Size").
func (p *Program) CodeBytes() int { return len(p.Instrs) * InstrBytes }

// DataBytes returns the state image size in bytes, excluding main-memory
// arrays, matching the paper's Table IV exclusion of the 128MB memory array.
func (p *Program) DataBytes() int { return p.NumWords * 8 }

// MemBytes returns the total memory-array bytes.
func (p *Program) MemBytes() int {
	n := 0
	for _, m := range p.Mems {
		n += len(m.Init) * 8
	}
	return n
}

type compiler struct {
	p         *Program
	next      int32
	constPool map[string]int32
	constVals []constFill
}

type constFill struct {
	off int32
	val bitvec.BV
}

func (c *compiler) alloc(width int) int32 {
	off := c.next
	c.next += int32(bitvec.WordsFor(width))
	return off
}

func (c *compiler) constSlot(v bitvec.BV) int32 {
	key := v.String()
	if off, ok := c.constPool[key]; ok {
		return off
	}
	off := c.alloc(v.Width)
	c.constPool[key] = off
	// The state image is sized after allocation finishes, so constant values
	// are stashed and filled in at the end of Compile.
	c.constVals = append(c.constVals, constFill{off, v})
	return off
}

// Compile lowers a validated graph into a Program. The graph must be
// compacted (dense IDs).
func Compile(g *ir.Graph) (*Program, error) {
	start := time.Now()
	n := len(g.Nodes)
	p := &Program{
		Graph:    g,
		Code:     make([]Range, n),
		Off:      make([]int32, n),
		NextOff:  make([]int32, n),
		WordsOf:  make([]int32, n),
		WAddrOff: make([]int32, n),
		WDataOff: make([]int32, n),
		WEnOff:   make([]int32, n),
	}
	c := &compiler{p: p, constPool: map[string]int32{}}

	// Storage allocation pass.
	for _, node := range g.Nodes {
		if node == nil {
			return nil, fmt.Errorf("emit: graph not compacted (nil node)")
		}
		switch node.Kind {
		case ir.KindMemWrite:
			p.Off[node.ID] = -1
			p.NextOff[node.ID] = -1
			p.WAddrOff[node.ID] = c.alloc(node.WAddr.Width)
			p.WDataOff[node.ID] = c.alloc(node.WData.Width)
			p.WEnOff[node.ID] = c.alloc(1)
		case ir.KindReg:
			p.Off[node.ID] = c.alloc(node.Width)
			p.NextOff[node.ID] = c.alloc(node.Width)
			p.WordsOf[node.ID] = int32(bitvec.WordsFor(node.Width))
		default:
			p.Off[node.ID] = c.alloc(node.Width)
			p.NextOff[node.ID] = p.Off[node.ID]
			p.WordsOf[node.ID] = int32(bitvec.WordsFor(node.Width))
		}
	}

	// Code generation pass.
	for _, node := range g.Nodes {
		startIdx := int32(len(p.Instrs))
		var err error
		switch node.Kind {
		case ir.KindInput:
			// no code
		case ir.KindComb:
			err = c.compileRoot(node.Expr, p.Off[node.ID])
		case ir.KindReg:
			err = c.compileRoot(node.Expr, p.NextOff[node.ID])
		case ir.KindMemRead:
			var addr operand
			addr, err = c.compileExpr(node.Expr)
			if err == nil {
				p.Instrs = append(p.Instrs, Instr{
					Op: CMemRead, D: p.Off[node.ID], DW: int32(node.Width),
					A: addr.off, AW: addr.width, Lo: int32(node.Mem.ID),
				})
			}
		case ir.KindMemWrite:
			if err = c.compileRoot(node.WAddr, p.WAddrOff[node.ID]); err == nil {
				if err = c.compileRoot(node.WData, p.WDataOff[node.ID]); err == nil {
					err = c.compileRoot(node.WEn, p.WEnOff[node.ID])
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("emit: node %q: %v", node.Name, err)
		}
		p.Code[node.ID] = Range{Start: startIdx, End: int32(len(p.Instrs))}
	}

	// Finalize the state image: zero, then fill constants and register inits.
	p.NumWords = int(c.next)
	p.Init = make([]uint64, p.NumWords)
	for _, cf := range c.constVals {
		copy(p.Init[cf.off:], cf.val.W)
	}
	for _, node := range g.Nodes {
		if node.Kind == ir.KindReg && node.Init.Width > 0 {
			copy(p.Init[p.Off[node.ID]:], node.Init.W)
			copy(p.Init[p.NextOff[node.ID]:], node.Init.W)
		}
	}

	// Memory images.
	p.Mems = make([]MemSpec, len(g.Mems))
	for i, m := range g.Mems {
		wp := int32(bitvec.WordsFor(m.Width))
		spec := MemSpec{Depth: m.Depth, Width: m.Width, WordsPer: wp, Init: make([]uint64, int32(m.Depth)*wp)}
		for addr, v := range m.Init {
			copy(spec.Init[int32(addr)*wp:int32(addr+1)*wp], v.W)
		}
		p.Mems[i] = spec
	}

	p.EmitTime = time.Since(start)
	return p, nil
}

type operand struct {
	off   int32
	width int32
}

// compileRoot compiles e, placing the result at dst.
func (c *compiler) compileRoot(e *ir.Expr, dst int32) error {
	switch e.Op {
	case ir.OpRef:
		src := c.p.Off[e.Node.ID]
		c.p.Instrs = append(c.p.Instrs, Instr{Op: CCopy, D: dst, DW: int32(e.Width), A: src, AW: int32(e.Node.Width)})
		return nil
	case ir.OpConst:
		src := c.constSlot(e.Imm)
		c.p.Instrs = append(c.p.Instrs, Instr{Op: CCopy, D: dst, DW: int32(e.Width), A: src, AW: int32(e.Width)})
		return nil
	}
	return c.compileInto(e, dst)
}

// compileExpr compiles e into a fresh or existing slot and returns it.
func (c *compiler) compileExpr(e *ir.Expr) (operand, error) {
	switch e.Op {
	case ir.OpRef:
		return operand{c.p.Off[e.Node.ID], int32(e.Node.Width)}, nil
	case ir.OpConst:
		return operand{c.constSlot(e.Imm), int32(e.Width)}, nil
	}
	dst := c.alloc(e.Width)
	if err := c.compileInto(e, dst); err != nil {
		return operand{}, err
	}
	return operand{dst, int32(e.Width)}, nil
}

// compileInto compiles a non-leaf expression, placing the result at dst.
func (c *compiler) compileInto(e *ir.Expr, dst int32) error {
	op, ok := opcodeOf[e.Op]
	if !ok {
		return fmt.Errorf("unsupported op %v", e.Op)
	}
	if (e.Op == ir.OpDiv || e.Op == ir.OpRem) && (e.Args[0].Width > 64 || e.Args[1].Width > 64) {
		return fmt.Errorf("div/rem wider than 64 bits not supported (widths %d, %d)", e.Args[0].Width, e.Args[1].Width)
	}
	var ops [3]operand
	for i, a := range e.Args {
		o, err := c.compileExpr(a)
		if err != nil {
			return err
		}
		ops[i] = o
	}
	in := Instr{Op: op, D: dst, DW: int32(e.Width), Hi: int32(e.Hi), Lo: int32(e.Lo)}
	switch len(e.Args) {
	case 1:
		in.A, in.AW = ops[0].off, ops[0].width
	case 2:
		in.A, in.AW = ops[0].off, ops[0].width
		in.B, in.BW = ops[1].off, ops[1].width
	case 3: // mux: A=sel, B=true arm, C=false arm; BW carries arm width
		in.A, in.AW = ops[0].off, ops[0].width
		in.B, in.BW = ops[1].off, ops[1].width
		in.C = ops[2].off
	}
	c.p.Instrs = append(c.p.Instrs, in)
	return nil
}
