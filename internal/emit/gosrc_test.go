package emit

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

func buildCounterProg(t *testing.T) (*Program, *ir.Graph) {
	t.Helper()
	b := ir.NewBuilder("cnt")
	en := b.Input("en", 1)
	r := b.Reg("c", 8)
	b.SetNext(r, b.Mux(b.R(en), b.AddW(b.R(r), b.C(8, 1), 8), b.R(r)))
	b.Output("o", b.R(r))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	return p, b.G
}

func TestGoSourceStructure(t *testing.T) {
	p, _ := buildCounterProg(t)
	var sb strings.Builder
	if err := WriteGoSourceFile(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"package main", "func eval()", "func commit()",
		`"en":`, `"o":`, "func main()", "func mux(",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("generated source missing %q", frag)
		}
	}
}

func TestGoSourceRejectsWide(t *testing.T) {
	b := ir.NewBuilder("wide")
	x := b.Input("x", 100)
	b.Output("o", b.Not(b.R(x)))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteGoSourceFile(&sb, p); err == nil {
		t.Fatal("expected wide-design rejection")
	}
}

// TestGoSourceExecutes compiles and runs the emitted program with the Go
// toolchain and checks its output against the in-process interpreter — the
// emission-path equivalent of the engine equivalence suite. Skipped when no
// toolchain is available.
func TestGoSourceExecutes(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	p, g := buildCounterProg(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGoSourceFile(f, p); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".", "7", "en=1")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	// Reference result from the interpreter.
	m := NewMachine(p)
	m.Poke(g.FindNode("en").ID, bitvec.FromUint64(1, 1))
	for i := 0; i < 7; i++ {
		m.Exec(0, int32(len(p.Instrs)))
		// Commit the register like the generated code does.
		rn := g.FindNode("c")
		copy(m.State[p.Off[rn.ID]:p.Off[rn.ID]+1], m.State[p.NextOff[rn.ID]:p.NextOff[rn.ID]+1])
	}
	want := m.Peek(g.FindNode("c").ID).Uint64()
	if want != 7 {
		t.Fatalf("interpreter says c=%d, want 7", want)
	}
	// The output `o` is combinational and follows the evaluate-then-commit
	// convention: after 7 cycles it reflects the pre-edge value, 6.
	if !strings.Contains(string(out), "o=6") {
		t.Fatalf("generated program output:\n%s\nwant o=6 (comb lags one evaluation)", out)
	}
}
