package emit

import (
	"fmt"
	"math/rand"
	"testing"

	"gsim/internal/bitvec"
	"gsim/internal/ir"
)

// compile builds and compiles a single-output graph around the expression.
func compileExpr(t *testing.T, inputs []*ir.Node, g *ir.Graph, e *ir.Expr) (*Program, *ir.Node) {
	t.Helper()
	out := g.AddNode(&ir.Node{Name: "out", Kind: ir.KindComb, Width: e.Width, Expr: e, IsOutput: true})
	if err := g.SortTopological(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	return p, out
}

// randExpr builds a random expression over the inputs, depth-bounded.
func randExpr(rng *rand.Rand, b *ir.Builder, inputs []*ir.Node, depth int) *ir.Expr {
	if depth == 0 || rng.Intn(5) == 0 {
		if rng.Intn(4) == 0 {
			w := 1 + rng.Intn(130)
			v := bitvec.New(w)
			for i := range v.W {
				v.W[i] = rng.Uint64()
			}
			v = bitvec.Pad(v, w)
			return ir.Const(bitvec.FromWords(w, v.W))
		}
		return ir.Ref(inputs[rng.Intn(len(inputs))])
	}
	sub := func() *ir.Expr { return randExpr(rng, b, inputs, depth-1) }
	switch rng.Intn(14) {
	case 0:
		return b.Add(sub(), sub())
	case 1:
		return b.Sub(sub(), sub())
	case 2:
		x, y := sub(), sub()
		return b.Mul(b.Fit(x, min(x.Width, 48)), b.Fit(y, min(y.Width, 48)))
	case 3:
		x, y := sub(), sub()
		return b.Div(b.Fit(x, min(x.Width, 64)), b.Fit(y, min(y.Width, 64)))
	case 4:
		return b.And(sub(), sub())
	case 5:
		return b.Or(sub(), sub())
	case 6:
		return b.Xor(sub(), sub())
	case 7:
		return b.Not(sub())
	case 8:
		x := sub()
		hi := rng.Intn(x.Width)
		lo := rng.Intn(hi + 1)
		return ir.BitsOf(x, hi, lo)
	case 9:
		return b.Cat(sub(), sub())
	case 10:
		return b.Mux(b.Fit(sub(), 1), sub(), sub())
	case 11:
		x := sub()
		if rng.Intn(2) == 0 {
			return b.Shl(x, rng.Intn(70))
		}
		return b.Shr(x, rng.Intn(x.Width+10))
	case 12:
		x, y := sub(), sub()
		if rng.Intn(2) == 0 {
			return b.DshlFull(x, b.Fit(y, 1+rng.Intn(7)))
		}
		return b.Dshr(x, b.Fit(y, 16))
	default:
		switch rng.Intn(6) {
		case 0:
			return b.Eq(sub(), sub())
		case 1:
			return b.Lt(sub(), sub())
		case 2:
			return b.SLt(sub(), sub())
		case 3:
			return b.OrR(sub())
		case 4:
			return b.AndR(sub())
		default:
			return b.XorR(sub())
		}
	}
}

// TestInterpreterMatchesEval is the emit-level property test: for random
// expression trees (narrow and wide), the compiled interpreter must agree
// with the bitvec reference evaluator bit for bit.
func TestInterpreterMatchesEval(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := ir.NewBuilder(fmt.Sprintf("x%d", seed))
		var inputs []*ir.Node
		vals := map[*ir.Node]bitvec.BV{}
		for i := 0; i < 4; i++ {
			w := 1 + rng.Intn(130)
			in := b.Input(fmt.Sprintf("i%d", i), w)
			inputs = append(inputs, in)
			v := bitvec.New(w)
			for j := range v.W {
				v.W[j] = rng.Uint64()
			}
			vals[in] = bitvec.FromWords(w, v.W)
		}
		e := randExpr(rng, b, inputs, 5)
		want := ir.EvalExpr(e, func(n *ir.Node) bitvec.BV { return vals[n] })

		p, out := compileExpr(t, inputs, b.G, e)
		m := NewMachine(p)
		for _, in := range inputs {
			m.Poke(in.ID, vals[in])
		}
		m.Exec(0, int32(len(p.Instrs)))
		got := m.Peek(out.ID)
		if !got.Equal(want) {
			t.Fatalf("seed %d: interp = %s, eval = %s\nexpr: %s", seed, got, want, e)
		}
	}
}

func TestRegisterStorageSeparate(t *testing.T) {
	b := ir.NewBuilder("r")
	r := b.Counter("c", 8, 1)
	b.Output("o", b.R(r))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	if p.Off[r.ID] == p.NextOff[r.ID] {
		t.Fatal("register cur/next share storage")
	}
	m := NewMachine(p)
	m.Exec(0, int32(len(p.Instrs)))
	// next = cur + 1 computed; cur unchanged until commit.
	if m.State[p.Off[r.ID]] != 0 || m.State[p.NextOff[r.ID]] != 1 {
		t.Fatalf("cur=%d next=%d", m.State[p.Off[r.ID]], m.State[p.NextOff[r.ID]])
	}
}

func TestRegisterInitApplied(t *testing.T) {
	b := ir.NewBuilder("i")
	r := b.RegInit("r", 16, bitvec.FromUint64(16, 0xbeef))
	b.SetNext(r, b.R(r))
	b.Output("o", b.R(r))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if m.Peek(r.ID).Uint64() != 0xbeef {
		t.Fatalf("init not applied: %s", m.Peek(r.ID))
	}
}

func TestMemoryReadWrite(t *testing.T) {
	b := ir.NewBuilder("m")
	addr := b.Input("addr", 4)
	mem := b.Mem("m", 16, 100) // wide elements (2 words)
	mem.Init = map[int]bitvec.BV{
		3: bitvec.FromWords(100, []uint64{0xdeadbeef, 0x1}),
	}
	rd := b.MemRead("rd", mem, b.R(addr))
	b.Output("o", b.R(rd))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.Poke(addr.ID, bitvec.FromUint64(4, 3))
	m.Exec(0, int32(len(p.Instrs)))
	got := m.Peek(rd.ID)
	if got.W[0] != 0xdeadbeef || got.W[1] != 1 {
		t.Fatalf("wide mem read = %s", got)
	}
	// Out-of-range handled by address width here (4 bits = depth), so poke
	// a different address and expect zero.
	m.Poke(addr.ID, bitvec.FromUint64(4, 5))
	m.Exec(0, int32(len(p.Instrs)))
	if !m.Peek(rd.ID).IsZero() {
		t.Fatal("uninitialized element should read zero")
	}
}

func TestWideDivRejected(t *testing.T) {
	b := ir.NewBuilder("d")
	x := b.Input("x", 100)
	y := b.Input("y", 100)
	b.Output("o", &ir.Expr{Op: ir.OpDiv, Args: []*ir.Expr{b.R(x), b.R(y)}, Width: 100})
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(b.G); err == nil {
		t.Fatal("expected wide-division compile error")
	}
}

func TestCodeAndDataSizes(t *testing.T) {
	b := ir.NewBuilder("s")
	x := b.Input("x", 32)
	b.Output("o", b.Add(b.R(x), b.C(32, 1)))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeBytes() != len(p.Instrs)*InstrBytes {
		t.Fatal("CodeBytes inconsistent")
	}
	if p.DataBytes() != p.NumWords*8 {
		t.Fatal("DataBytes inconsistent")
	}
	if p.CodeBytes() == 0 || p.DataBytes() == 0 {
		t.Fatal("sizes should be nonzero")
	}
}

func TestConstPoolDeduplicated(t *testing.T) {
	b := ir.NewBuilder("c")
	x := b.Input("x", 32)
	e1 := b.Add(b.R(x), b.C(32, 12345))
	e2 := b.Xor(b.Fit(e1, 32), b.C(32, 12345))
	b.Output("o", e2)
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(b.G)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct const slots holding 12345.
	count := 0
	for _, w := range p.Init {
		if w == 12345 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("constant 12345 stored %d times, want 1", count)
	}
}

func TestPokeReportsChange(t *testing.T) {
	b := ir.NewBuilder("p")
	x := b.Input("x", 70)
	b.Output("o", b.Not(b.R(x)))
	if err := b.G.SortTopological(); err != nil {
		t.Fatal(err)
	}
	p, _ := Compile(b.G)
	m := NewMachine(p)
	v := bitvec.FromWords(70, []uint64{1, 1})
	if !m.Poke(x.ID, v) {
		t.Fatal("first poke should report change")
	}
	if m.Poke(x.ID, v) {
		t.Fatal("same-value poke should report no change")
	}
	v2 := bitvec.FromWords(70, []uint64{1, 2})
	if !m.Poke(x.ID, v2) {
		t.Fatal("high-word change missed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
