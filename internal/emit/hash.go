package emit

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// DesignHash returns a stable identity for the compiled artifact: a SHA-256
// over everything that determines execution semantics and state layout — the
// instruction stream, the storage maps, the initial image, and the memory
// specs. Two Programs with equal hashes have interchangeable state images, so
// the hash is the compatibility rule for snapshots (internal/snapshot stamps
// it into every header and refuses to restore across a mismatch) and the
// natural identity for compiled-design caching. The compilation pipeline is
// deterministic (the golden-VCD suite depends on that), so rebuilding the
// same design with the same options reproduces the same hash.
//
// The hash is computed once and memoized; Program is immutable after Compile,
// so concurrent callers (server sessions sharing one Program) are safe.
func (p *Program) DesignHash() [32]byte {
	p.hashOnce.Do(func() { p.hash = p.computeHash() })
	return p.hash
}

// DesignHashString returns the hash in hex, for cache keys and API responses.
func (p *Program) DesignHashString() string { return fmt.Sprintf("%x", p.DesignHash()) }

func (p *Program) computeHash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	wU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wI32s := func(vs []int32) {
		for _, v := range vs {
			binary.LittleEndian.PutUint32(buf[:4], uint32(v))
			h.Write(buf[:4])
		}
	}
	wWords := func(vs []uint64) {
		for _, v := range vs {
			wU64(v)
		}
	}

	wU64(uint64(p.NumWords))
	wWords(p.Init)
	wU64(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		wI32s([]int32{int32(in.Op), in.DW, in.AW, in.BW, in.D, in.A, in.B, in.C, in.Hi, in.Lo})
	}
	wU64(uint64(len(p.Code)))
	for _, r := range p.Code {
		wI32s([]int32{r.Start, r.End})
	}
	wI32s(p.Off)
	wI32s(p.NextOff)
	wI32s(p.WordsOf)
	wI32s(p.WAddrOff)
	wI32s(p.WDataOff)
	wI32s(p.WEnOff)
	wU64(uint64(len(p.Mems)))
	for i := range p.Mems {
		m := &p.Mems[i]
		wU64(uint64(m.Depth))
		wU64(uint64(m.Width))
		wU64(uint64(m.WordsPer))
		wWords(m.Init)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
