package emit

import (
	"fmt"
	"math/bits"
)

// KernelFn is one compiled instruction as a pre-bound closure — the
// direct-threaded analogue of GSIM emitting specialized C++ statements.
// Opcode dispatch, operand word offsets, widths, shift amounts, and result
// masks are all resolved once when the kernel table is built, so retiring an
// instruction at simulation time is a single indirect call with no operand
// decode and no opcode switch. st is always the owning machine's state image
// (passed so the hot loop loads it once per sweep, not once per
// instruction); m carries the memory arrays and the wide-operation helpers.
type KernelFn func(st []uint64, m *Machine)

// numOpCodes bounds the opcode enumeration (via the cOpCount sentinel); the
// kernel-coverage test sweeps [CCopy, numOpCodes) and fails if a new opcode
// lands without a kernel or an explicit interpreter fallback.
const numOpCodes = int(cOpCount)

// BuildKernelsBase populates p.KernelsBase: the pre-fusion, pre-width-class
// kernel table (specialized narrow closures, execWide for everything wider).
// It exists as the measurable baseline the fused pipeline is benchmarked
// against (-eval kernel-nofuse) and is built only when an engine asks for it.
// The build is once-guarded: a Program shared by concurrently constructed
// engines (server sessions over one cached compile) builds the table exactly
// once.
func (p *Program) BuildKernelsBase() {
	p.kernOnce.Do(func() {
		fns := make([]KernelFn, len(p.Instrs))
		for i := range p.Instrs {
			fns[i] = compileKernelBase(p, p.Instrs[i])
		}
		p.KernelsBase = fns
	})
}

// ExecKernelBase runs instructions [start, end) through the baseline kernel
// table (BuildKernelsBase must have been called).
func (m *Machine) ExecKernelBase(start, end int32) {
	st := m.State
	for _, f := range m.Prog.KernelsBase[start:end] {
		f(st, m)
	}
}

// ResetCounters clears the machine's retired-instruction counter.
func (m *Machine) ResetCounters() { m.Executed = 0 }

// compileKernelBase is the PR-2 baseline compiler behind -eval kernel-nofuse:
// narrow specialization only, no width classes, and callers apply no fusion —
// the measurable floor the fused bound-chain pipeline (CompileChainBound) is
// benchmarked against.
func compileKernelBase(p *Program, in Instr) KernelFn {
	if in.DW > 64 || in.AW > 64 || in.BW > 64 {
		return wideFallback(in)
	}
	return compileNarrowKernel(p, in)
}

// wideFallback pre-binds a private copy of the instruction for the
// interpreter's multi-word path, so the sweep never touches Instrs.
func wideFallback(in Instr) KernelFn {
	wide := in
	return func(_ []uint64, m *Machine) { m.execWide(&wide) }
}

// compileNarrowKernel builds the specialized single-word closure: masks and
// shift amounts baked in, mirroring execNarrow exactly.
func compileNarrowKernel(p *Program, in Instr) KernelFn {
	d, a, b, c := int(in.D), int(in.A), int(in.B), int(in.C)
	aw, bw := in.AW, in.BW
	dm := mask(in.DW)
	switch in.Op {
	case CCopy:
		return func(st []uint64, _ *Machine) { st[d] = st[a] & dm }
	case CAdd:
		return func(st []uint64, _ *Machine) { st[d] = (st[a] + st[b]) & dm }
	case CSub:
		return func(st []uint64, _ *Machine) { st[d] = (st[a] - st[b]) & dm }
	case CMul:
		return func(st []uint64, _ *Machine) { st[d] = (st[a] * st[b]) & dm }
	case CDiv:
		return func(st []uint64, _ *Machine) {
			var r uint64
			if bv := st[b]; bv != 0 {
				r = st[a] / bv
			}
			st[d] = r & dm
		}
	case CRem:
		return func(st []uint64, _ *Machine) {
			var r uint64
			if bv := st[b]; bv != 0 {
				r = st[a] % bv
			}
			st[d] = r & dm
		}
	case CNeg:
		return func(st []uint64, _ *Machine) { st[d] = -st[a] & dm }
	case CAnd:
		return func(st []uint64, _ *Machine) { st[d] = (st[a] & st[b]) & dm }
	case COr:
		return func(st []uint64, _ *Machine) { st[d] = (st[a] | st[b]) & dm }
	case CXor:
		return func(st []uint64, _ *Machine) { st[d] = (st[a] ^ st[b]) & dm }
	case CNot:
		return func(st []uint64, _ *Machine) { st[d] = ^st[a] & dm }
	case CAndR:
		am := mask(aw)
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] == am) }
	case COrR:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] != 0) }
	case CXorR:
		return func(st []uint64, _ *Machine) { st[d] = uint64(bits.OnesCount64(st[a])) & 1 }
	case CEq:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] == st[b]) }
	case CNeq:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] != st[b]) }
	case CLt:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] < st[b]) }
	case CLeq:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] <= st[b]) }
	case CGt:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] > st[b]) }
	case CGeq:
		return func(st []uint64, _ *Machine) { st[d] = b2u(st[a] >= st[b]) }
	case CSLt:
		return func(st []uint64, _ *Machine) { st[d] = b2u(sext64(st[a], aw) < sext64(st[b], bw)) }
	case CSLeq:
		return func(st []uint64, _ *Machine) { st[d] = b2u(sext64(st[a], aw) <= sext64(st[b], bw)) }
	case CSGt:
		return func(st []uint64, _ *Machine) { st[d] = b2u(sext64(st[a], aw) > sext64(st[b], bw)) }
	case CSGeq:
		return func(st []uint64, _ *Machine) { st[d] = b2u(sext64(st[a], aw) >= sext64(st[b], bw)) }
	case CShl:
		sh := uint(in.Lo) // Go defines shifts >= 64 as 0, matching execNarrow
		return func(st []uint64, _ *Machine) { st[d] = (st[a] << sh) & dm }
	case CShr:
		sh := uint(in.Lo)
		return func(st []uint64, _ *Machine) { st[d] = (st[a] >> sh) & dm }
	case CDshl:
		return func(st []uint64, _ *Machine) {
			var r uint64
			if n := st[b]; n < 64 {
				r = st[a] << n
			}
			st[d] = r & dm
		}
	case CDshr:
		return func(st []uint64, _ *Machine) {
			var r uint64
			if n := st[b]; n < 64 {
				r = st[a] >> n
			}
			st[d] = r & dm
		}
	case CCat:
		sh := uint(bw)
		return func(st []uint64, _ *Machine) { st[d] = (st[a]<<sh | st[b]) & dm }
	case CBits:
		sh := uint(in.Lo)
		return func(st []uint64, _ *Machine) { st[d] = (st[a] >> sh) & dm }
	case CSExt:
		return func(st []uint64, _ *Machine) { st[d] = uint64(sext64(st[a], aw)) & dm }
	case CMux:
		return func(st []uint64, _ *Machine) {
			r := st[c]
			if st[a] != 0 {
				r = st[b]
			}
			st[d] = r & dm
		}
	case CMemRead:
		mi := int(in.Lo)
		spec := &p.Mems[mi]
		depth := uint64(spec.Depth)
		wp := spec.WordsPer
		return func(st []uint64, m *Machine) {
			var r uint64
			if addr := st[a]; addr < depth {
				r = m.Mems[mi][int32(addr)*wp]
			}
			st[d] = r & dm
		}
	}
	panic(fmt.Sprintf("emit: no kernel for opcode %d", in.Op))
}

// b2u converts a comparison result to the canonical 0/1 word.
func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
