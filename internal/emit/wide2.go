package emit

// Width classes. The kernel compiler picks the cheapest evaluation strategy
// an instruction's operand and result widths allow:
//
//   - WCNarrow: everything fits one word — a fully specialized closure with
//     masks and shifts pre-bound (compileNarrowBound).
//   - WC2Word: the 65–128-bit class — a dedicated two-word closure with the
//     high-word offsets and extension masks pre-bound (compile2WBound), so
//     mid-width datapaths (wide buses, 128-bit stimulus registers) skip the
//     generic word loop.
//   - WCWide: anything else — the interpreter's multi-word path (execWide).
//
// The class of an instruction is a pure function of its opcode and widths
// (classOf); the width-class coverage test sweeps every opcode against the
// classification so a new opcode or class cannot land untested.
type WidthClass uint8

// Width-class enumeration. numWidthClasses is the sentinel: keep it last.
const (
	WCNarrow WidthClass = iota
	WC2Word
	WCWide

	numWidthClasses
)

var widthClassNames = [numWidthClasses]string{"narrow", "2word", "wide"}

// String names the class.
func (c WidthClass) String() string {
	if int(c) < len(widthClassNames) {
		return widthClassNames[c]
	}
	return "invalid"
}

// classOf classifies an instruction by the evaluation strategy the bound
// compiler (compileKernelBound) selects for it.
func classOf(in Instr) WidthClass {
	if in.DW <= 64 && in.AW <= 64 && in.BW <= 64 {
		return WCNarrow
	}
	if is2Word(in) {
		return WC2Word
	}
	return WCWide
}

// is2Word reports whether the instruction qualifies for a dedicated two-word
// kernel. The supported set mirrors what mid-width datapaths actually use:
// copy, add, sub, and, or, xor, not, mux (two-word results) and eq, neq
// (one-bit results over operands up to 128 bits). Everything else in the
// wide regime (shifts, cat, bit slices, reductions, multiplies, ...) stays on
// execWide.
func is2Word(in Instr) bool {
	switch in.Op {
	case CCopy, CNot:
		return wordsFor32(in.DW) == 2
	case CAdd, CSub, CAnd, COr, CXor:
		return wordsFor32(in.DW) == 2
	case CMux:
		// A is the one-word selector; both arms share BW and may be any
		// width (reads truncate to the two result words, as execWide does).
		return wordsFor32(in.DW) == 2 && in.AW <= 64
	case CEq, CNeq:
		return in.AW <= 128 && in.BW <= 128
	}
	return false
}
