// Package faultpoint provides named, test-toggleable fault injection points.
// Production hardening is only believable if its failure paths run on demand:
// a fault point is a named site in the codebase (compile, step, snapshot,
// request admission) where a test can arm a failure — a panic, an error, a
// corruption, a stall — and observe that the blast radius stays contained
// (one poisoned session, not a dead process; one rejected restore, not a
// corrupted engine).
//
// All points are disarmed by default and the disarmed fast path is a single
// atomic load, so shipping the hooks in production code is free. Tests arm
// points with a fire count (and optionally a delay), run the scenario, and
// Reset. The registry is global — fault points model process-wide failures
// (any session may hit an armed fault), which is exactly the chaos-test
// contract: faults land on whoever trips them, and everyone else must be
// unaffected.
package faultpoint

import (
	"sync"
	"sync/atomic"
	"time"
)

// The fault points wired into the tree. Sites reference these constants; the
// registry accepts any name, so tests can add scratch points without edits
// here.
const (
	// CompileFail makes core.CompileDesign return an injected error.
	CompileFail = "compile-fail"
	// StepPanic panics inside a session's step loop (server op boundary).
	StepPanic = "step-panic"
	// PoolPanic panics inside a parallel-engine worker goroutine.
	PoolPanic = "pool-panic"
	// SnapshotCorrupt flips snapshot header bytes after capture, producing a
	// blob that must be rejected on restore.
	SnapshotCorrupt = "snapshot-corrupt"
	// SlowOp stalls a session op batch for the armed delay.
	SlowOp = "slow-op"
)

// armed is the fast-path gate: false means no point anywhere is armed and
// Hit returns immediately. It is only ever written under mu.
var armed atomic.Bool

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	remaining int // fires left; < 0 means unlimited
	delay     time.Duration
	fired     uint64 // lifetime fire count, for test assertions
}

// Arm makes the named point fire on its next n hits (n < 0: every hit until
// disarmed). Re-arming replaces the previous count but keeps the fire count.
func Arm(name string, n int) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		p = &point{}
		points[name] = p
	}
	p.remaining = n
	recomputeLocked()
}

// ArmDelay arms the point like Arm and attaches a stall: every fire sleeps d
// before returning from Hit. Used by SlowOp-style points.
func ArmDelay(name string, n int, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		p = &point{}
		points[name] = p
	}
	p.remaining = n
	p.delay = d
	recomputeLocked()
}

// Disarm stops the named point from firing. Its lifetime fire count survives
// until Reset.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		p.remaining = 0
		p.delay = 0
	}
	recomputeLocked()
}

// Reset disarms everything and zeroes all fire counts. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Fired reports how many times the named point has fired since Reset.
func Fired(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.fired
	}
	return 0
}

// Hit is the injection site call: it reports whether the named fault fires
// now, consuming one armed fire and applying any armed delay. Disarmed (the
// production state) it costs one atomic load.
func Hit(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	p := points[name]
	if p == nil || p.remaining == 0 {
		mu.Unlock()
		return false
	}
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			recomputeLocked()
		}
	}
	p.fired++
	delay := p.delay
	mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return true
}

// recomputeLocked refreshes the fast-path gate after arm state changes.
func recomputeLocked() {
	for _, p := range points {
		if p.remaining != 0 {
			armed.Store(true)
			return
		}
	}
	armed.Store(false)
}
