package faultpoint

import (
	"sync"
	"testing"
	"time"
)

func TestDisarmedByDefault(t *testing.T) {
	defer Reset()
	if Hit("nope") {
		t.Fatal("unarmed point fired")
	}
	if Fired("nope") != 0 {
		t.Fatal("fire count on unarmed point")
	}
}

func TestArmCountConsumed(t *testing.T) {
	defer Reset()
	Arm("p", 2)
	if !Hit("p") || !Hit("p") {
		t.Fatal("armed point did not fire")
	}
	if Hit("p") {
		t.Fatal("point fired past its count")
	}
	if got := Fired("p"); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
	// Exhausting the only armed point must restore the fast path.
	if armed.Load() {
		t.Fatal("fast-path gate still set after exhaustion")
	}
}

func TestUnlimitedAndDisarm(t *testing.T) {
	defer Reset()
	Arm("p", -1)
	for i := 0; i < 10; i++ {
		if !Hit("p") {
			t.Fatal("unlimited point stopped firing")
		}
	}
	Disarm("p")
	if Hit("p") {
		t.Fatal("disarmed point fired")
	}
}

func TestArmDelayStalls(t *testing.T) {
	defer Reset()
	ArmDelay("slow", 1, 30*time.Millisecond)
	start := time.Now()
	if !Hit("slow") {
		t.Fatal("delayed point did not fire")
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay %v, want >= 30ms", d)
	}
}

func TestConcurrentHitsConsumeExactly(t *testing.T) {
	defer Reset()
	const n = 64
	Arm("p", n/2)
	var fired sync.WaitGroup
	var count int64
	var mu2 sync.Mutex
	for i := 0; i < n; i++ {
		fired.Add(1)
		go func() {
			defer fired.Done()
			if Hit("p") {
				mu2.Lock()
				count++
				mu2.Unlock()
			}
		}()
	}
	fired.Wait()
	if count != n/2 {
		t.Fatalf("%d fires, want %d", count, n/2)
	}
}
