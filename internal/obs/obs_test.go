package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestTextEncodingGolden pins the exposition format byte-for-byte: family
// ordering, HELP/TYPE lines, label rendering, histogram expansion.
func TestTextEncodingGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gsim_test_ops_total", "Operations.", L("op", "step"))
	c.Add(41)
	c.Inc()
	r.Counter("gsim_test_ops_total", "Operations.", L("op", "poke")).Add(7)
	g := r.Gauge("gsim_test_sessions", "Live sessions.")
	g.Set(3)
	r.GaugeFunc("gsim_test_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	h := r.Histogram("gsim_test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gsim_test_latency_seconds Latency.
# TYPE gsim_test_latency_seconds histogram
gsim_test_latency_seconds_bucket{le="0.1"} 1
gsim_test_latency_seconds_bucket{le="1"} 3
gsim_test_latency_seconds_bucket{le="+Inf"} 4
gsim_test_latency_seconds_sum 6.05
gsim_test_latency_seconds_count 4
# HELP gsim_test_ops_total Operations.
# TYPE gsim_test_ops_total counter
gsim_test_ops_total{op="poke"} 7
gsim_test_ops_total{op="step"} 42
# HELP gsim_test_sessions Live sessions.
# TYPE gsim_test_sessions gauge
gsim_test_sessions 3
# HELP gsim_test_uptime_seconds Uptime.
# TYPE gsim_test_uptime_seconds gauge
gsim_test_uptime_seconds 12.5
`
	if sb.String() != want {
		t.Errorf("encoding mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestHistogramBucketBoundaries pins le semantics: a sample exactly on an
// upper bound lands in that bucket (le is <=), one just above spills over.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gsim_test_bounds", "Boundary test.", []float64{1, 2, 4})
	for _, v := range []float64{1, 2, 4, 1.0000001, 4.5, -3} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	// -3 and 1 land in le=1; 1.0000001 and 2 in le=2; 4 in le=4; 4.5 in +Inf.
	wantCum := []uint64{2, 4, 5, 6}
	for i, w := range wantCum {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
	if math.Abs(sum-9.5000001) > 1e-9 {
		t.Errorf("sum = %v, want 9.5000001", sum)
	}
}

// TestConcurrentIncrement hammers every metric type from many goroutines;
// run under -race this is the data-race proof, and the totals prove no lost
// updates.
func TestConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gsim_test_conc_total", "c")
	g := r.Gauge("gsim_test_conc_gauge", "g")
	h := r.Histogram("gsim_test_conc_hist", "h", []float64{10, 100})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestRegistryCollision: identical re-registration is idempotent (same
// instance), conflicting respec panics.
func TestRegistryCollision(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("gsim_test_x_total", "help")
	b := r.Counter("gsim_test_x_total", "help")
	if a != b {
		t.Error("identical re-registration returned a different instance")
	}
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("type conflict", func() { r.Gauge("gsim_test_x_total", "help") })
	assertPanics("help conflict", func() { r.Counter("gsim_test_x_total", "other help") })
	assertPanics("bucket conflict", func() {
		r.Histogram("gsim_test_h", "h", []float64{1, 2})
		r.Histogram("gsim_test_h", "h", []float64{1, 3})
	})
	assertPanics("bad name", func() { r.Counter("Bad-Name", "x") })
}

// TestParseRoundTrip: what the encoder writes, the parser reads back.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("gsim_test_rt_total", "rt", L("kind", `quo"te`)).Add(5)
	r.Gauge("gsim_test_rt_gauge", "rt").Set(2.25)
	h := r.Histogram("gsim_test_rt_seconds", "rt", []float64{0.5})
	h.Observe(0.1)
	h.Observe(3)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("gsim_test_rt_total", "kind", `quo"te`); !ok || v != 5 {
		t.Errorf("counter round-trip: got %v ok=%v", v, ok)
	}
	if v, ok := sc.Value("gsim_test_rt_gauge"); !ok || v != 2.25 {
		t.Errorf("gauge round-trip: got %v ok=%v", v, ok)
	}
	if v, ok := sc.Value("gsim_test_rt_seconds_bucket", "le", "+Inf"); !ok || v != 2 {
		t.Errorf("bucket round-trip: got %v ok=%v", v, ok)
	}
	if v, ok := sc.Value("gsim_test_rt_seconds_count"); !ok || v != 2 {
		t.Errorf("count round-trip: got %v ok=%v", v, ok)
	}
}

// TestHistogramDeltaQuantile checks the scrape-diff quantile estimate
// gsim-diag -live relies on.
func TestHistogramDeltaQuantile(t *testing.T) {
	mk := func(observe []float64) string {
		r := NewRegistry()
		h := r.Histogram("gsim_test_q_seconds", "q", []float64{0.01, 0.1, 1})
		for _, v := range observe {
			h.Observe(v)
		}
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, err := ParseText(strings.NewReader(mk(nil)))
	if err != nil {
		t.Fatal(err)
	}
	// 100 observations uniformly inside (0.01, 0.1].
	obsVals := make([]float64, 100)
	for i := range obsVals {
		obsVals[i] = 0.05
	}
	b, err := ParseText(strings.NewReader(mk(obsVals)))
	if err != nil {
		t.Fatal(err)
	}
	deltas := HistogramDelta(a, b, "gsim_test_q_seconds")
	if deltas == nil {
		t.Fatal("no deltas")
	}
	p50 := Quantile(0.5, deltas)
	if p50 < 0.01 || p50 > 0.1 {
		t.Errorf("p50 = %v, want within (0.01, 0.1]", p50)
	}
	if q := Quantile(0.5, nil); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}
