package obs

import "runtime"

// RegisterProcessMetrics adds the Go-runtime gauges every gsim binary
// exports: goroutine count and live heap bytes. GaugeFunc evaluation happens
// at scrape time, so the values are current without a sampler goroutine.
// ReadMemStats stops the world briefly; at scrape cadence (seconds) that is
// noise, which is why these are scrape-time funcs rather than hot-path
// counters. Idempotent per registry.
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("gsim_go_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("gsim_go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
}
