// Package obs is the repo's dependency-free observability kit: counters,
// gauges, and histograms with lock-free atomic hot paths, a registry that
// renders the Prometheus text exposition format (version 0.0.4), a parser for
// that format (gsim-diag -live diffs two scrapes), and a slog construction
// helper shared by the binaries.
//
// Design rules:
//
//   - Mutation is wait-free where possible: counters and histogram bucket
//     increments are single atomic adds; float accumulation (gauge Add,
//     histogram sums) is a CAS loop on the bit pattern. Nothing on a metric's
//     write path takes a lock or allocates.
//   - Every metric method is nil-receiver safe, so instrumentation can be
//     threaded unconditionally through hot code and compiled out of the
//     picture by simply not attaching a bundle (a nil check per call is the
//     entire disabled-mode cost).
//   - Registration is idempotent for an identical spec (same name, type,
//     help, buckets, labels returns the same instance) and panics on a
//     conflicting respec — silent double registration under one name with
//     different meaning is a bug worth failing loudly on.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The value is stored as IEEE-754
// bits in a uint64; Set is a single store, Add a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates delta into the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets and tracks the
// running sum. Buckets are cumulative only at encode time; the hot path does
// one atomic add into the owning bucket plus a CAS-loop float add for the sum.
type Histogram struct {
	uppers []float64 // sorted ascending; an implicit +Inf bucket follows
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// DefBuckets spans microseconds to tens of seconds — wide enough for compile
// times and narrow enough for per-op latencies.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 30,
}

// Observe records one sample. A sample lands in the first bucket whose upper
// bound is >= v (Prometheus le semantics).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~20): a linear scan beats binary search in practice
	// and keeps the path branch-predictable for the common small-value case.
	idx := -1
	for i, ub := range h.uppers {
		if v <= ub {
			idx = i
			break
		}
	}
	if idx < 0 {
		h.inf.Add(1)
	} else {
		h.counts[idx].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with uppers plus +Inf.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.uppers)+1)
	var run uint64
	for i := range h.uppers {
		run += h.counts[i].Load()
		cum[i] = run
	}
	cum[len(h.uppers)] = run + h.inf.Load()
	return cum, h.Sum(), h.count.Load()
}

// labelSig renders labels in a canonical sorted form — both the series map
// key and the exposition form.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Go %q escapes \n, \", and \\ exactly as the exposition format
		// requires for label values.
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}
