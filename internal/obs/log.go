package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger from the binaries' -log-format/-log-level
// flags: format "text" or "json", level "debug"/"info"/"warn"/"error".
// Unknown values fall back to text/info rather than erroring — logging
// misconfiguration should never stop a server from starting.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.ToLower(format) == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// NopLogger returns a logger that discards everything — the default inside
// Manager and Router so tests and benchmarks stay quiet unless a harness
// opts in.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
