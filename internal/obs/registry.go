package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates what a family holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (family, label-set) instance.
type series struct {
	sig    string // canonical sorted {k="v",...} form; "" for unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
	labels []Label
}

// family groups every series registered under one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only
	series  map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. A Registry may also have child registries attached
// (per-component sub-registries); WriteTo gathers the whole tree.
//
// Registration is idempotent: asking for a series that already exists with an
// identical spec returns the existing instance, so component bundles can be
// constructed repeatedly against one process-global registry (every Manager,
// Router, or test harness sharing it observes the same series). A respec —
// same name with a different type, help string, or bucket layout — panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	children []*Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-global registry the binaries expose on /metrics.
var Default = NewRegistry()

// nameRE is the charset this repo enforces for metric names — deliberately
// tighter than Prometheus' own grammar (TestMetricNameLint pins the gsim_
// prefix on top of it).
var nameRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// Attach makes child a sub-registry: its families render inside r's output.
// Binaries attach one child per component when they want per-component
// scoping; most callers simply register into one registry directly.
func (r *Registry) Attach(child *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.children = append(r.children, child)
}

// lookup finds or creates the (family, series) slot, enforcing spec
// consistency. Caller does NOT hold r.mu.
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels []Label) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	} else {
		if f.kind != kind || f.help != help || !equalBuckets(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a conflicting spec", name))
		}
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{sig: sig, labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			h := &Histogram{uppers: append([]float64(nil), buckets...)}
			sort.Float64s(h.uppers)
			h.counts = make([]atomic.Uint64, len(h.uppers))
			s.h = h
		}
		f.series[sig] = s
	}
	return s
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time. Re-
// registering the same series replaces the callback (last writer wins), so a
// restartable component can re-point the gauge at its live instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGaugeFunc, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or returns the existing) histogram series. A nil or
// empty buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, buckets, labels).h
}

// Names returns every registered family name in the registry tree, sorted.
// The metric-name lint test walks this.
func (r *Registry) Names() []string {
	seen := map[string]bool{}
	r.collectNames(seen)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) collectNames(seen map[string]bool) {
	r.mu.Lock()
	for n := range r.families {
		seen[n] = true
	}
	children := append([]*Registry(nil), r.children...)
	r.mu.Unlock()
	for _, c := range children {
		c.collectNames(seen)
	}
}

// WriteTo renders the registry tree in the Prometheus text exposition format:
// families sorted by name, series sorted by label signature, histograms as
// cumulative _bucket/_sum/_count expansions.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	fams := map[string]*family{}
	r.gather(fams)
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, sig, fmtVal(float64(s.c.Value())))
			case kindGauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, sig, fmtVal(s.g.Value()))
			case kindGaugeFunc:
				var v float64
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, sig, fmtVal(v))
			case kindHistogram:
				cum, sum, count := s.h.snapshot()
				for i, ub := range s.h.uppers {
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, withLE(sig, fmtVal(ub)), cum[i])
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, withLE(sig, "+Inf"), cum[len(s.h.uppers)])
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, sig, fmtVal(sum))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, sig, count)
			}
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// gather merges the registry tree's families into fams. Two registries
// contributing the same family name must agree on its spec; their series
// merge (distinct label sets coexist, an identical label set panics — two
// components are fighting over one series).
func (r *Registry) gather(fams map[string]*family) {
	r.mu.Lock()
	for name, f := range r.families {
		dst, ok := fams[name]
		if !ok {
			dst = &family{name: f.name, help: f.help, kind: f.kind, buckets: f.buckets, series: map[string]*series{}}
			fams[name] = dst
		} else if dst.kind != f.kind || dst.help != f.help || !equalBuckets(dst.buckets, f.buckets) {
			panic(fmt.Sprintf("obs: family %q registered with conflicting specs across registries", name))
		}
		for sig, s := range f.series {
			if _, dup := dst.series[sig]; dup {
				panic(fmt.Sprintf("obs: series %s%s registered in multiple registries", name, sig))
			}
			dst.series[sig] = s
		}
	}
	children := append([]*Registry(nil), r.children...)
	r.mu.Unlock()
	for _, c := range children {
		c.gather(fams)
	}
}

// withLE splices le="v" into an existing label signature (or creates one).
func withLE(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

// fmtVal renders a float the way Prometheus clients do: integral values
// without an exponent, everything else in shortest-round-trip form.
func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ContentType is the exposition-format content type /metrics responds with.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry as /metrics text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = r.WriteTo(w)
	})
}
