package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition-format line: a metric name (histogram
// expansions keep their _bucket/_sum/_count suffixes), its labels, and the
// value. Scrape holds one scrape's worth.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape indexes one /metrics payload for diffing.
type Scrape struct {
	Samples []Sample
	byKey   map[string]float64
}

// key is the canonical sample identity: name plus sorted labels.
func sampleKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Value returns the sample value for name with exactly the given labels
// (pass pairs as k1, v1, k2, v2, ...). ok reports presence.
func (s *Scrape) Value(name string, kv ...string) (v float64, ok bool) {
	labels := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		labels[kv[i]] = kv[i+1]
	}
	v, ok = s.byKey[sampleKey(name, labels)]
	return v, ok
}

// Matching returns every sample whose name matches exactly.
func (s *Scrape) Matching(name string) []Sample {
	var out []Sample
	for _, sm := range s.Samples {
		if sm.Name == name {
			out = append(out, sm)
		}
	}
	return out
}

// ParseText parses a Prometheus text-format payload (the subset this
// package's encoder emits: comments, blank lines, and name{labels} value
// lines — no timestamps, no escapes beyond \\, \", \n in label values).
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{byKey: map[string]float64{}}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := strings.TrimSpace(br.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		smp, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %v", lineNo, err)
		}
		sc.Samples = append(sc.Samples, smp)
		sc.byKey[sampleKey(smp.Name, smp.Labels)] = smp.Value
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseLine(line string) (Sample, error) {
	var smp Sample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return smp, fmt.Errorf("no value in %q", line)
	} else {
		smp.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return smp, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return smp, err
		}
		smp.Labels = labels
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "+Inf" || valStr == "Inf" {
		smp.Value = inf()
		return smp, nil
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return smp, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	smp.Value = v
	return smp, nil
}

func inf() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}

func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		// Scan to the closing quote, honoring backslash escapes.
		var val strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// BucketDelta is one histogram bucket's upper bound and the count delta
// between two scrapes (non-cumulative).
type BucketDelta struct {
	Upper float64 // +Inf for the overflow bucket
	Count uint64
}

// HistogramDelta extracts the per-bucket observation deltas for histogram
// name (optionally restricted to a label pair list) between scrapes a and b.
// Returns nil if the histogram is absent from either scrape.
func HistogramDelta(a, b *Scrape, name string, kv ...string) []BucketDelta {
	want := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		want[kv[i]] = kv[i+1]
	}
	collect := func(s *Scrape) map[float64]float64 {
		out := map[float64]float64{}
		for _, sm := range s.Matching(name + "_bucket") {
			match := true
			for k, v := range want {
				if sm.Labels[k] != v {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			le, err := strconv.ParseFloat(strings.Replace(sm.Labels["le"], "+Inf", "Inf", 1), 64)
			if err != nil {
				continue
			}
			out[le] += sm.Value
		}
		return out
	}
	ca, cb := collect(a), collect(b)
	if len(ca) == 0 || len(cb) == 0 {
		return nil
	}
	uppers := make([]float64, 0, len(cb))
	for ub := range cb {
		uppers = append(uppers, ub)
	}
	sort.Float64s(uppers)
	out := make([]BucketDelta, len(uppers))
	var prevA, prevB float64
	for i, ub := range uppers {
		da := ca[ub] - prevA
		db := cb[ub] - prevB
		prevA, prevB = ca[ub], cb[ub]
		d := db - da
		if d < 0 {
			d = 0
		}
		out[i] = BucketDelta{Upper: ub, Count: uint64(d)}
	}
	return out
}

// Quantile estimates quantile q (0..1) from non-cumulative bucket deltas by
// linear interpolation within the target bucket — the standard Prometheus
// histogram_quantile estimate. Returns 0 when there are no observations.
func Quantile(q float64, buckets []BucketDelta) float64 {
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	lower := 0.0
	for _, b := range buckets {
		if seen+float64(b.Count) >= rank {
			if b.Upper == inf() {
				// Tail beyond the last finite bound: the lower edge is the
				// best defensible estimate.
				return lower
			}
			if b.Count == 0 {
				return b.Upper
			}
			frac := (rank - seen) / float64(b.Count)
			return lower + (b.Upper-lower)*frac
		}
		seen += float64(b.Count)
		lower = b.Upper
	}
	return lower
}
