// Package stats provides the small numeric helpers the experiment harness
// reports with: geometric means, summaries, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of positive values; non-positive values
// are skipped. Returns 0 for an empty (or all-skipped) input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Median, Max float64
	Mean             float64
}

// Summarize computes order statistics.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Median: s[len(s)/2],
		Max:    s[len(s)-1],
		Mean:   Mean(s),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g med=%.3g mean=%.3g max=%.3g", s.N, s.Min, s.Median, s.Mean, s.Max)
}

// Histogram bins values into n equal-width buckets between min and max and
// renders an ASCII sketch.
func Histogram(xs []float64, n int) string {
	if len(xs) == 0 || n <= 0 {
		return "(empty)"
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, n)
	for _, x := range xs {
		i := int(float64(n) * (x - lo) / (hi - lo))
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	maxc := 1
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		binLo := lo + (hi-lo)*float64(i)/float64(n)
		fmt.Fprintf(&b, "%10.3g | %s %d\n", binLo, strings.Repeat("*", c*40/maxc), c)
	}
	return b.String()
}
