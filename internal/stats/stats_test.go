package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %g", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("geomean(5) = %g", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean(empty) != 0")
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, -1, 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean with skips = %g", got)
	}
}

// Property: geomean lies between min and max of positive samples.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			v := math.Abs(x)
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 1e100 && v > 1e-100 {
				xs = append(xs, v)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Median != 2 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatal("summary string broken")
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{1, 1, 2, 3, 3, 3}, 3)
	if !strings.Contains(h, "*") {
		t.Fatalf("histogram missing bars: %q", h)
	}
	if Histogram(nil, 3) != "(empty)" {
		t.Fatal("empty histogram")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean broken")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean(empty) != 0")
	}
}
