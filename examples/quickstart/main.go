// Quickstart: load a FIRRTL design, build the GSIM simulator, poke inputs,
// step the clock, and read results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/firrtl"
)

// A GCD unit in FIRRTL — the design a user would feed in via a .fir file
// (see examples/quickstart/gcd.fir for the same circuit on disk).
const gcdFir = `
circuit GCD :
  module GCD :
    input clock : Clock
    input reset : UInt<1>
    input start : UInt<1>
    input a : UInt<16>
    input b : UInt<16>
    output result : UInt<16>
    output done : UInt<1>

    reg x : UInt<16>, clock
    reg y : UInt<16>, clock

    when start :
      x <= a
      y <= b
    else :
      when gt(x, y) :
        x <= tail(sub(x, y), 1)
      else :
        when neq(y, UInt<16>(0)) :
          y <= tail(sub(y, x), 1)

    result <= x
    done <= eq(y, UInt<16>(0))
`

func main() {
	// 1. Parse + elaborate FIRRTL into the dataflow graph.
	g, err := firrtl.Load(gcdFir)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("elaborated %s: %d nodes, %d edges\n", g.Name, st.Nodes, st.Edges)

	// 2. Build the full GSIM pipeline: optimization passes, supernode
	// partitioning, compiled program, essential-signal engine.
	sys, err := core.Build(g, core.GSIM())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("built in %v; %d supernodes (avg %.1f nodes); passes: %s\n",
		sys.BuildTime.Round(1000), sys.Part.Count(), sys.Part.AvgSize(), sys.PassResult)

	// 3. Drive it: compute gcd(1071, 462).
	poke := func(name string, v uint64) {
		n := sys.Node(name)
		sys.Sim.Poke(n.ID, bitvec.FromUint64(n.Width, v))
	}
	peek := func(name string) uint64 { return sys.Sim.Peek(sys.Node(name).ID).Uint64() }

	poke("start", 1)
	poke("a", 1071)
	poke("b", 462)
	sys.Sim.Step() // operands latch at this edge
	poke("start", 0)
	cycles := 1
	for {
		// Step first: `done` is a combinational node, so it reflects the
		// state as of each evaluation (see README "simulation semantics").
		sys.Sim.Step()
		cycles++
		if peek("done") == 1 {
			break
		}
		if cycles > 10000 {
			log.Fatal("GCD did not converge")
		}
	}
	fmt.Printf("gcd(1071, 462) = %d after %d cycles\n", peek("result"), cycles)

	// 4. Engine counters: how much work did essential-signal simulation skip?
	s := sys.Sim.Stats()
	fmt.Printf("activity factor %.3f (%d node evals over %d cycles)\n",
		s.ActivityFactor(), s.NodeEvals, s.Cycles)
}
