// Partition example: compare the four supernode-partitioning algorithms and
// sweep the maximum supernode size on a synthetic processor profile — the
// interactive version of the paper's Table III and Fig. 9.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"time"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/gen"
	"gsim/internal/partition"
	"gsim/internal/passes"
)

func main() {
	profile := gen.RocketLike()
	g := gen.BuildProfile(profile)
	passes.Normalize(g)
	fmt.Printf("design %s: %d nodes\n\n", profile.Name, g.NumNodes())

	stim := func(sys *core.System) func(cycle int) {
		n := sys.Graph.FindNode("stim")
		return func(cycle int) {
			sys.Sim.Poke(n.ID, stimWord(profile, cycle))
		}
	}

	fmt.Printf("%-12s %10s %10s %12s %10s %10s\n", "partition", "build", "supernodes", "avg size", "af", "speed")
	for _, kind := range []partition.Kind{partition.None, partition.Kernighan, partition.MFFC, partition.Enhanced} {
		cfg := core.Config{
			Name:      kind.String(),
			Engine:    core.EngineActivity,
			Partition: kind,
			Activity:  engine.ActivityConfig{MultiBitCheck: true, Activation: engine.ActCostModel},
		}
		sys, err := core.Build(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		drive := stim(sys)
		hz := run(sys, drive, 300)
		fmt.Printf("%-12s %10v %10d %12.1f %10.3f %9.1fkHz\n",
			kind, sys.Part.BuildTime.Round(time.Millisecond), sys.Part.Count(), sys.Part.AvgSize(),
			sys.Sim.Stats().ActivityFactor(), hz/1000)
		sys.Close()
	}

	fmt.Println("\nmax supernode size sweep (enhanced partitioner):")
	for _, size := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := core.GSIM()
		cfg.MaxSupernode = size
		sys, err := core.Build(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		hz := run(sys, stim(sys), 300)
		fmt.Printf("  size %4d: %8.1fkHz (%d supernodes)\n", size, hz/1000, sys.Part.Count())
		sys.Close()
	}
}

func run(sys *core.System, drive func(int), cycles int) float64 {
	for c := 0; c < 30; c++ {
		drive(c)
		sys.Sim.Step()
	}
	start := time.Now()
	for c := 0; c < cycles; c++ {
		drive(30 + c)
		sys.Sim.Step()
	}
	return float64(cycles) / time.Since(start).Seconds()
}

// stimWord builds a hot-loop stimulus: both cluster selectors dwell on
// cluster 0/1, the payload cycles through a short table.
func stimWord(p gen.Profile, cycle int) bitvec.BV {
	selW := uint(1)
	for 1<<selW < p.Clusters {
		selW++
	}
	sel := uint64(cycle/256) & 1
	payload := uint64(cycle%8) * 0x9e3779b97f4a7c15
	lo := sel | sel<<selW | payload<<(2*selW)
	return bitvec.FromWords(128, []uint64{lo, payload >> (64 - 2*selW)})
}
