// Bit-split example: the paper's Fig. 4, end to end. A wide signal D is a
// concatenation of A, B, C; E = not(D); F reads E[1:0] and G reads E[5:2].
// Without splitting, a change to A activates G even though G's bits cannot
// change. With bit-level node splitting, the A-path and the {B,C}-path
// separate, and G stays quiet while A toggles.
//
//	go run ./examples/bitsplit
package main

import (
	"fmt"
	"log"

	"gsim/internal/bitvec"
	"gsim/internal/core"
	"gsim/internal/engine"
	"gsim/internal/ir"
	"gsim/internal/partition"
	"gsim/internal/passes"
)

func buildFig4() *ir.Graph {
	b := ir.NewBuilder("fig4")
	a := b.Input("A", 2)
	bIn := b.Input("B", 2)
	c := b.Input("C", 2)
	d := b.Comb("D", b.CatAll(b.R(c), b.R(bIn), b.R(a)))
	e := b.Comb("E", b.Not(b.R(d)))
	b.Output("F", b.Bits(b.R(e), 1, 0))
	b.Output("G", b.Bits(b.R(e), 5, 2))
	return b.G
}

func run(name string, opt passes.Options) {
	sys, err := core.Build(buildFig4(), core.Config{
		Name:      name,
		Opt:       opt,
		Engine:    core.EngineActivity,
		Partition: partition.None, // per-node activity so the effect is visible
		Activity:  engine.ActivityConfig{Activation: engine.ActBranch},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	aID := sys.Node("A").ID
	gID := sys.Node("G").ID
	// Settle once, then toggle only A and count evaluations.
	sys.Sim.Step()
	base := sys.Sim.Stats().NodeEvals
	gBefore := sys.Sim.Peek(gID)
	for i := 0; i < 8; i++ {
		sys.Sim.Poke(aID, bitvec.FromUint64(2, uint64(i&3)))
		sys.Sim.Step()
	}
	evals := sys.Sim.Stats().NodeEvals - base
	fmt.Printf("%-16s %2d node evaluations while only A toggles; G stayed %s: %v\n",
		name, evals, gBefore, sys.Sim.Peek(gID).Equal(gBefore))
}

func main() {
	fmt.Println("paper Fig. 4: D = cat(C,B,A); E = not(D); F = E[1:0]; G = E[5:2]")
	run("without-split", passes.Options{})
	run("with-split", passes.Options{BitSplit: true, Simplify: true, Redundant: true})
	fmt.Println("\nwith splitting, the A→D→E→F path no longer activates G's cone,")
	fmt.Println("so toggling A evaluates fewer nodes per cycle (reduced activity factor).")
}
