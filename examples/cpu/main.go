// CPU example: run the bundled RV32I core through every simulator preset on
// the CoreMark-like workload and compare speeds and architectural results
// against the reference ISS — the paper's stuCore experiment in miniature.
//
//	go run ./examples/cpu [coremark|linux]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"gsim/internal/core"
	"gsim/internal/rv"
)

func main() {
	workload := "coremark"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	src, ok := rv.Workloads[workload]
	if !ok {
		log.Fatalf("unknown workload %q (have coremark, linux)", workload)
	}
	prog, err := rv.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	// Golden model first.
	iss := rv.NewISS(prog, rv.DefaultCoreConfig().DMemWords)
	issStart := time.Now()
	if err := iss.Run(5_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISS: %d instructions, a0=%#x (%v)\n", iss.Count, iss.Regs[10], time.Since(issStart).Round(time.Microsecond))

	cfgs := []core.Config{core.Verilator(), core.VerilatorMT(2), core.Arcilator(), core.Essent(), core.GSIM()}
	fmt.Printf("\n%-14s %10s %12s %10s %8s\n", "simulator", "cycles", "speed", "a0", "af")
	for _, cfg := range cfgs {
		c, err := rv.BuildCore(prog, rv.DefaultCoreConfig())
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.Build(c.Graph, cfg)
		if err != nil {
			log.Fatal(err)
		}
		halted := sys.Node("halted")
		start := time.Now()
		cycles := 0
		for sys.Sim.Peek(halted.ID).IsZero() {
			sys.Sim.Step()
			cycles++
			if cycles > int(iss.Count)+100 {
				log.Fatalf("%s: did not halt", cfg.Name)
			}
		}
		el := time.Since(start)
		a0 := sys.Sim.PeekMem(c.RFID, 10).Uint64()
		if uint32(a0) != iss.Regs[10] {
			log.Fatalf("%s: a0=%#x, ISS says %#x", cfg.Name, a0, iss.Regs[10])
		}
		fmt.Printf("%-14s %10d %10.1fkHz %#10x %8.3f\n",
			cfg.Name, cycles, float64(cycles)/el.Seconds()/1000, a0, sys.Sim.Stats().ActivityFactor())
		sys.Close()
	}
	fmt.Println("\nall simulators agree with the ISS")
}
