module gsim

go 1.24
