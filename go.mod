module gsim

go 1.23
